// Package switchnet models the interconnection network of a shared-memory
// multiprocessor. The default — and the machine the package is named for —
// is the Butterfly switching network: a multistage interconnection network
// built from 4-input, 4-output switch elements with a per-port bandwidth of
// 32 Mbit/s. A remote memory reference traverses ceil(log4 N) switch stages
// from the source processor node controller (PNC) to the destination memory,
// and the reply traverses the mirror path. Alternative topologies (fat-tree,
// dragonfly, 2D mesh) implement the same Interconnect interface; see
// topology.go.
//
// Contention is modelled per switch output port: each port is a server with a
// service time proportional to the packet size; a packet arriving while the
// port is busy waits. The Butterfly hardware made switch contention "almost
// negligible" (Rettberg & Thomas, CACM 1986); with realistic parameters this
// model reproduces that result (experiment E6).
package switchnet

import (
	"fmt"

	"butterfly/internal/calendar"
)

// Radix is the fan-in/fan-out of each switch element (4 on the Butterfly).
const Radix = 4

// maxNodes bounds the node count of any topology in this package. 4^10 is
// far beyond the 512–4096-node sweeps the experiments run and keeps the
// routing digit buffers fixed-size on the stack.
const maxNodes = 1 << 20

// maxStages is the deepest butterfly maxNodes allows: log4(4^10) = 10.
const maxStages = 10

// Config holds the tunable parameters of the network model.
type Config struct {
	// Nodes is the number of processing nodes connected to the network.
	Nodes int
	// HopLatency is the fixed propagation plus switching delay through one
	// switch stage, in nanoseconds. Non-butterfly topologies derive their
	// per-hop timing from it (see each constructor), so one calibration
	// describes the link technology across all families.
	HopLatency int64
	// BytesPerSecond is the bandwidth of one switch port. The Butterfly-I
	// ports carried 32 Mbit/s = 4e6 bytes/s.
	BytesPerSecond int64
}

// DefaultConfig returns the calibration used for the Butterfly-I: chosen so
// that an uncontended one-word remote reference on a 128-node (4-stage)
// machine completes in just under 4 µs, the paper's figure. The byte rate is
// twice the nominal 32 Mbit/s port bandwidth because the Butterfly switch
// provides separate forward and reverse paths per connection.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:          nodes,
		HopLatency:     250, // ns per stage
		BytesPerSecond: 8_000_000,
	}
}

// Stats aggregates network-level counters.
type Stats struct {
	Packets      uint64 // packets routed
	TotalHops    uint64 // switch stages traversed
	ContentionNs int64  // total time spent waiting for busy ports
	Dropped      uint64 // packets dropped in flight and retransmitted (fault injection)
}

// Geometry reports the butterfly a node count maps onto: the number of
// switch stages (ceil(log4 nodes), minimum 1) and the number of wire
// positions per stage (Radix^stages). Node counts that are not a power of
// the radix are rounded up to the next power — the real machine was
// configured the same way, with unused switch ports — so ports may exceed
// nodes. Exported so tests and topologies never re-derive the rounding.
func Geometry(nodes int) (stages, ports int) {
	if nodes <= 0 {
		panic("switchnet: node count must be positive")
	}
	if nodes > maxNodes {
		panic(fmt.Sprintf("switchnet: node count %d exceeds the supported maximum %d", nodes, maxNodes))
	}
	stages = 0
	for span := 1; span < nodes; span *= Radix {
		stages++
	}
	if stages == 0 {
		stages = 1 // degenerate 1-node machine still has a stage to itself
	}
	ports = 1
	for i := 0; i < stages; i++ {
		ports *= Radix
	}
	return stages, ports
}

// Network is the Butterfly multistage interconnection network. It tracks
// per-port occupancy so concurrent transfers through a common port queue up.
type Network struct {
	netBase
	stages int
	// nports is the wire-position count per stage: Radix^stages, which is
	// the node count rounded up to a power of the radix (see Geometry).
	nports int
	// pow[i] is Radix^i, precomputed so routing replaces one digit per
	// stage in O(1) instead of re-deriving every digit.
	pow [maxStages + 1]int
	// ports[stage][port] is the reservation calendar of one switch output
	// port. Ports are identified by the switch-element output they leave
	// through; with radix-4 elements and N nodes there are Radix^stages
	// ports per stage (one "wire" position per node address). Calendars
	// allow the time-charging layers above to pre-book packets into the
	// virtual future without falsely serializing later-issued,
	// earlier-timed traffic.
	ports [][]calendar.Calendar
}

// New builds a Butterfly network for the given configuration. The node
// count may be any positive number up to 4^10; counts that are not a power
// of the radix are rounded up internally for routing purposes — Geometry
// documents the exact mapping and Ports exposes the result.
func New(cfg Config) *Network {
	stages, nports := Geometry(cfg.Nodes)
	b := make([][]calendar.Calendar, stages)
	for i := range b {
		b[i] = make([]calendar.Calendar, nports)
	}
	n := &Network{netBase: netBase{cfg: cfg}, stages: stages, nports: nports, ports: b}
	n.pow[0] = 1
	for i := 1; i <= maxStages; i++ {
		n.pow[i] = n.pow[i-1] * Radix
	}
	return n
}

// Name identifies the topology family.
func (n *Network) Name() Topology { return Butterfly }

// Stages returns the number of switch stages a packet traverses end to end.
func (n *Network) Stages() int { return n.stages }

// Ports returns the number of wire positions per stage (the node count
// rounded up to a power of the radix).
func (n *Network) Ports() int { return n.nports }

// UncontendedNs is the fixed end-to-end latency of a packet crossing an idle
// network: one hop delay per stage plus the port service time of the packet.
func (n *Network) UncontendedNs(bytes int) int64 {
	return int64(n.stages)*n.cfg.HopLatency + int64(bytes)*1_000_000_000/n.cfg.BytesPerSecond
}

// portAtRef is the reference routing model: the port a src->dst packet
// occupies at the given stage, derived digit by digit. The routing is the
// standard butterfly digit-exchange: after stage s, the s+1 most significant
// radix-4 digits of the position have been replaced by digits of the
// destination. Transit uses the incremental equivalent (one digit swap per
// stage); the fuzz target in switchnet_test.go holds the two equal.
func (n *Network) portAtRef(src, dst, stage int) int {
	digits := n.stages
	pos := 0
	for d := 0; d < digits; d++ {
		var dig int
		if d <= stage {
			dig = digit(dst, digits-1-d)
		} else {
			dig = digit(src, digits-1-d)
		}
		pos = pos*Radix + dig
	}
	return pos
}

// digit extracts radix-4 digit i (0 = least significant) of v.
func digit(v, i int) int {
	for ; i > 0; i-- {
		v /= Radix
	}
	return v % Radix
}

// route writes the per-stage port of a src->dst packet into out[:stages].
// Stage s's position is src with its s+1 most significant digits replaced by
// dst's, so each stage swaps exactly one digit of the previous position:
// O(stages) digit work per packet instead of O(stages²).
func (n *Network) route(src, dst int, out *[maxStages]int) {
	pos := src
	for s := 0; s < n.stages; s++ {
		k := n.stages - 1 - s
		pw := n.pow[k]
		pos += ((dst/pw)%Radix - (src/pw)%Radix) * pw
		out[s] = pos
	}
}

// Transit routes a packet of the given size from node src to node dst
// starting at virtual time now, and returns the time at which the packet is
// fully delivered. Port occupancy along the path is updated, so later packets
// sharing a port are delayed (switch contention). src == dst is a zero-cost
// local transfer.
func (n *Network) Transit(now int64, src, dst, bytes int) int64 {
	if src == dst {
		return now
	}
	n.checkRoute(src, dst)
	n.stats.Packets++
	t := now
	svc := n.serviceNs(bytes)
	var path [maxStages]int
	n.route(src, dst, &path)
	for s := 0; s < n.stages; s++ {
		port := path[s]
		start := n.ports[s][port].Reserve(t, svc)
		n.stats.ContentionNs += start - t
		if pr := n.probe; pr != nil {
			pr.SwitchHop(start, svc, start-t, s, port)
		}
		// The port is occupied while the packet streams through it;
		// cut-through routing lets the head proceed after HopLatency.
		t = start + n.cfg.HopLatency
		n.stats.TotalHops++
	}
	// Delivery completes when the tail clears the last stage.
	return t + svc
}

// Prune discards port reservations that ended before now; callers invoke it
// periodically (no future packet can be issued earlier than the engine's
// current time).
func (n *Network) Prune(now int64) {
	for s := range n.ports {
		for p := range n.ports[s] {
			n.ports[s][p].PruneBefore(now)
		}
	}
}

// PathPorts reports the (stage, port) pairs a src->dst packet occupies; it is
// exported for tests and for the contention experiment's instrumentation.
func (n *Network) PathPorts(src, dst int) [][2]int {
	return n.pathAppend(src, dst, nil)
}

// pathAppend appends the (stage, port) hops of src->dst to buf.
func (n *Network) pathAppend(src, dst int, buf [][2]int) [][2]int {
	if src == dst {
		return buf
	}
	n.checkRoute(src, dst)
	var path [maxStages]int
	n.route(src, dst, &path)
	for s := 0; s < n.stages; s++ {
		buf = append(buf, [2]int{s, path[s]})
	}
	return buf
}

// reserveHop books one packet onto a stage port with full Transit accounting.
func (n *Network) reserveHop(stage, port int, t, svc int64) int64 {
	start := n.ports[stage][port].Reserve(t, svc)
	n.stats.ContentionNs += start - t
	if pr := n.probe; pr != nil {
		pr.SwitchHop(start, svc, start-t, stage, port)
	}
	n.stats.TotalHops++
	return start
}

// hopLatencyNs is the per-stage propagation delay.
func (n *Network) hopLatencyNs(int) int64 { return n.cfg.HopLatency }
