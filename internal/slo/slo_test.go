package slo

import (
	"strings"
	"testing"
)

func TestHistSmallValuesExact(t *testing.T) {
	var h Hist
	for v := int64(0); v <= 15; v++ {
		h.Add(v)
	}
	if h.N() != 16 {
		t.Fatalf("n = %d", h.N())
	}
	// Every value below 16 has its own bucket: quantiles are exact.
	if got := h.Quantile(0.0001); got != 0 {
		t.Errorf("q0001 = %d, want 0", got)
	}
	if got := h.Quantile(1); got != 15 {
		t.Errorf("q100 = %d, want exact max 15", got)
	}
}

func TestHistBoundedRelativeError(t *testing.T) {
	// 16 sub-buckets per octave bound the bucket-upper error at 1/16.
	for _, v := range []int64{17, 100, 999, 12345, 7_777_777, 1 << 40} {
		var h Hist
		h.Add(v)
		got := h.Quantile(0.5)
		if got < v {
			t.Errorf("quantile(%d) = %d, below the sample", v, got)
		}
		if relErr := float64(got-v) / float64(v); relErr > 1.0/16 {
			t.Errorf("quantile(%d) = %d, rel err %.3f > 1/16", v, got, relErr)
		}
	}
}

func TestHistQuantileRanks(t *testing.T) {
	var h Hist
	for _, v := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 of 1..10 = %d, want 5", got)
	}
	if got := h.Quantile(0.9); got != 9 {
		t.Errorf("p90 of 1..10 = %d, want 9", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("p100 of 1..10 = %d, want 10", got)
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("mean = %d, want 5 (integer division of 55/10)", got)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Add(10)
	b.Add(1000)
	b.Add(20)
	a.Merge(&b)
	if a.N() != 3 {
		t.Errorf("merged n = %d", a.N())
	}
	if a.Max() != 1000 {
		t.Errorf("merged max = %d", a.Max())
	}
}

func TestTrackerWindowAttribution(t *testing.T) {
	tr := NewTracker(10) // 10ns windows
	tr.Arrival(5)        // window 0
	tr.Done(5, 25, true) // completes in window 2, latency 20

	ws := tr.Windows()
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	// Latency lands in the ARRIVAL window; the completion count lands in
	// the completion window (that is the queue-depth curve).
	if ws[0].Arrivals != 1 || ws[0].Done != 1 || ws[0].Lat.N() != 1 {
		t.Errorf("window 0 = %+v, want the arrival, its completion, and its latency", ws[0])
	}
	if ws[2].Finished != 1 {
		t.Errorf("window 2 finished = %d, want 1", ws[2].Finished)
	}
	if ws[0].Finished != 0 {
		t.Errorf("window 0 finished = %d, want 0", ws[0].Finished)
	}
}

func TestTrackerInFlight(t *testing.T) {
	tr := NewTracker(10)
	tr.Arrival(1)
	tr.Arrival(2)
	tr.Arrival(12)
	tr.Done(1, 15, true) // arrives w0, finishes w1

	// End of window 0: 2 arrived, 0 finished -> 2 in flight.
	if got := tr.InFlightAtEnd(0); got != 2 {
		t.Errorf("inflight after w0 = %d, want 2", got)
	}
	// End of window 1: 3 arrived, 1 finished -> 2 in flight.
	if got := tr.InFlightAtEnd(1); got != 2 {
		t.Errorf("inflight after w1 = %d, want 2", got)
	}
}

func TestVerdicts(t *testing.T) {
	tr := NewTracker(10)
	// Window 0: one fast ok request -> pass.
	tr.Arrival(1)
	tr.Done(1, 3, true)
	// Window 1: one error -> err rate 100% -> fail.
	tr.Arrival(11)
	tr.Done(11, 13, false)
	// Window 2: empty -> vacuous pass.
	// Window 3: slow request -> p99 fail.
	tr.Arrival(31)
	tr.Done(31, 131, true)

	obj := Objective{Name: "t", P99Ns: 50, MaxErrRate: 0.01}
	vs := tr.Verdicts(obj)
	// The late completion at t=131 extends the window slice; trailing
	// windows have no arrivals and pass vacuously.
	want := []bool{true, false, true, false}
	if len(vs) < len(want) {
		t.Fatalf("verdicts = %d, want >= %d", len(vs), len(want))
	}
	for i, w := range want {
		if vs[i].Pass != w {
			t.Errorf("window %d pass = %v, want %v", i, vs[i].Pass, w)
		}
	}
	for i := len(want); i < len(vs); i++ {
		if !vs[i].Pass {
			t.Errorf("empty window %d failed; vacuous pass expected", i)
		}
	}
}

func TestVerdictsCountPendingAsErrors(t *testing.T) {
	tr := NewTracker(10)
	tr.Arrival(1) // never completes
	vs := tr.Verdicts(Objective{P99Ns: 1 << 40, MaxErrRate: 0.01})
	if len(vs) != 1 || vs[0].Pass {
		t.Errorf("verdicts = %+v, want a single FAIL (pending request counts against the SLO)", vs)
	}
}

func TestVerdictLineArc(t *testing.T) {
	tr := NewTracker(10)
	tr.Arrival(1)
	tr.Done(1, 2, true)
	tr.Arrival(11)
	tr.Done(11, 12, false) // fail window
	// window 2 empty (skipped in the arc)
	tr.Arrival(31)
	tr.Done(31, 32, true) // recovery

	obj := Objective{P99Ns: 50, MaxErrRate: 0.01}
	got := VerdictLine(tr.Verdicts(obj), tr.Windows())
	if got != "PASS->FAIL->PASS (recovered)" {
		t.Errorf("arc = %q", got)
	}
}

func TestWriteSummaryAndWindows(t *testing.T) {
	tr := NewTracker(10)
	tr.Arrival(1)
	tr.Done(1, 4, true)
	var sb strings.Builder
	tr.WriteSummary(&sb, 10)
	if !strings.Contains(sb.String(), "offered 1") {
		t.Errorf("summary missing offered count:\n%s", sb.String())
	}
	sb.Reset()
	tr.WriteWindows(&sb, Objective{P99Ns: 50, MaxErrRate: 0.01})
	if !strings.Contains(sb.String(), "pass") {
		t.Errorf("window table missing verdict:\n%s", sb.String())
	}
}
