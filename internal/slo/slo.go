// Package slo is the service-level accounting layer for workload-driven
// runs: per-request latency recorded into fixed-bucket log-linear
// histograms, offered-vs-achieved throughput, a derived in-flight (queue
// depth) curve, and windowed pass/fail verdicts against an explicit
// objective — all in virtual time.
//
// Everything here is exact integer arithmetic over virtual nanoseconds:
// recording the same request stream produces byte-identical reports, which
// is what lets the golden test pin a full SLO report and what makes a
// report a legitimate experiment table (cacheable by the lab, diffable in
// CI). The package is a leaf — standard library only — so the workload
// adapters and the core experiments can both hold a Tracker without import
// cycles.
package slo

import (
	"fmt"
	"io"
	"math/bits"
)

// Hist is a log-linear latency histogram: values 0..15 ns get exact
// buckets, and every octave above that is split into 16 sub-buckets, so
// the relative quantization error is bounded by 1/16 (~6%) at any
// magnitude while the whole table stays a fixed 960-entry array. The
// layout is the HdrHistogram idea shrunk to the simulator's needs: fixed
// size (no allocation on the record path), deterministic (bucket index is
// pure integer arithmetic), and mergeable.
type Hist struct {
	buckets [960]uint64
	n       uint64
	sum     int64
	max     int64
}

// bucketOf maps a non-negative latency to its bucket index.
func bucketOf(v int64) int {
	if v < 16 {
		return int(v)
	}
	e := bits.Len64(uint64(v)) // >= 5
	idx := (e-4)*16 + int((uint64(v)>>(e-5))&15)
	if idx >= len(Hist{}.buckets) {
		idx = len(Hist{}.buckets) - 1
	}
	return idx
}

// bucketUpper is the largest value that maps to bucket idx — the value
// Quantile reports, so quantiles always over-estimate (never flatter the
// service) and stay within the 1/16 quantization bound.
func bucketUpper(idx int) int64 {
	if idx < 16 {
		return int64(idx)
	}
	e := idx/16 + 4
	sub := idx % 16
	width := int64(1) << (e - 5)
	return (int64(16+sub) << (e - 5)) + width - 1
}

// Add records one latency. Negative values clamp to zero (a request can
// complete no earlier than it arrived; clock skew is not a thing in
// virtual time, but defensive truncation keeps the histogram total exact).
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N is the number of recorded values.
func (h *Hist) N() uint64 { return h.n }

// Mean is the exact mean of recorded values (0 when empty).
func (h *Hist) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / int64(h.n)
}

// Max is the largest recorded value (exact, not bucketized).
func (h *Hist) Max() int64 { return h.max }

// Quantile returns the upper bound of the bucket holding the q-th
// quantile (0 < q <= 1) of the recorded values, or 0 when empty. q == 1
// returns the exact maximum.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Window is one fixed-width slice of the run. Latency (and the error
// count) is attributed to the window the request *arrived* in — the
// convention that makes a brownout legible: requests issued while a node
// was down show their degradation in the window of the outage, not
// smeared into whenever the retries finally resolved.
type Window struct {
	Arrivals uint64 // requests whose scheduled arrival fell in this window
	Done     uint64 // of those, how many have completed (ok or not)
	Errors   uint64 // of those, how many completed with an error
	Finished uint64 // completions whose *completion time* fell here (queue-depth curve)
	Lat      Hist   // latency of requests arriving in this window
}

// Tracker accumulates per-request accounting for one service under load.
// It is single-goroutine (the simulation is sequential) and allocation-free
// on the record path except for window-slice growth.
type Tracker struct {
	// WindowNs is the verdict/reporting window width.
	WindowNs int64

	// Total pools every request's latency.
	Total Hist

	Offered   uint64 // requests injected (arrivals)
	Completed uint64 // requests finished, successfully or not
	Errors    uint64 // requests finished with an error (timeouts, dead nodes)

	LastDoneNs int64 // latest completion time seen

	windows []Window
}

// NewTracker creates a tracker with the given reporting window width.
func NewTracker(windowNs int64) *Tracker {
	if windowNs <= 0 {
		windowNs = 10_000_000 // 10 ms
	}
	return &Tracker{WindowNs: windowNs}
}

func (t *Tracker) window(atNs int64) *Window {
	if atNs < 0 {
		atNs = 0
	}
	i := int(atNs / t.WindowNs)
	for len(t.windows) <= i {
		t.windows = append(t.windows, Window{})
	}
	return &t.windows[i]
}

// Arrival records a request injected at its scheduled arrival time.
func (t *Tracker) Arrival(atNs int64) {
	t.Offered++
	t.window(atNs).Arrivals++
}

// Done records a request (scheduled arrival atNs) completing at doneNs.
// ok is false for timeouts, dead-node errors, and remote exceptions.
func (t *Tracker) Done(atNs, doneNs int64, ok bool) {
	lat := doneNs - atNs
	if lat < 0 {
		lat = 0
	}
	t.Completed++
	t.Total.Add(lat)
	w := t.window(atNs)
	w.Done++
	w.Lat.Add(lat)
	if !ok {
		t.Errors++
		w.Errors++
	}
	t.window(doneNs).Finished++
	if doneNs > t.LastDoneNs {
		t.LastDoneNs = doneNs
	}
}

// Windows returns the recorded windows (window i covers
// [i*WindowNs, (i+1)*WindowNs)).
func (t *Tracker) Windows() []Window { return t.windows }

// InFlightAtEnd is the number of requests arrived but not yet finished at
// the end of window i — the queue-depth curve, derived exactly from the
// arrival and completion streams rather than sampled.
func (t *Tracker) InFlightAtEnd(i int) int64 {
	var arr, fin uint64
	for k := 0; k <= i && k < len(t.windows); k++ {
		arr += t.windows[k].Arrivals
		fin += t.windows[k].Finished
	}
	return int64(arr) - int64(fin)
}

// Objective is an explicit service-level objective: every window must keep
// its p99 at or under P99Ns and its error rate at or under MaxErrRate.
type Objective struct {
	Name       string
	P99Ns      int64
	MaxErrRate float64
}

// Verdict is one window's judgment against an Objective.
type Verdict struct {
	Window  int
	Pass    bool
	P99Ns   int64
	ErrRate float64
}

// Verdicts judges every window against the objective. A window with no
// arrivals passes vacuously. Requests that arrived but never completed
// (only possible if the service hung — the adapters guarantee completion
// via timeouts) count as errors, so a silent hang cannot pass.
func (t *Tracker) Verdicts(o Objective) []Verdict {
	out := make([]Verdict, len(t.windows))
	for i := range t.windows {
		w := &t.windows[i]
		v := Verdict{Window: i, Pass: true}
		if w.Arrivals > 0 {
			v.P99Ns = w.Lat.Quantile(0.99)
			pending := w.Arrivals - w.Done
			v.ErrRate = float64(w.Errors+pending) / float64(w.Arrivals)
			v.Pass = v.P99Ns <= o.P99Ns && v.ErrRate <= o.MaxErrRate
		}
		out[i] = v
	}
	return out
}

// VerdictLine compresses a verdict sequence into the run's arc: "PASS"
// (never failed), "FAIL" (never passed after first failing), or
// "PASS->FAIL->PASS (recovered)" style transitions. Windows with no
// arrivals are skipped (the drain tail after injection stops).
func VerdictLine(vs []Verdict, windows []Window) string {
	var arc []string
	for i, v := range vs {
		if windows[i].Arrivals == 0 {
			continue
		}
		s := "PASS"
		if !v.Pass {
			s = "FAIL"
		}
		if len(arc) == 0 || arc[len(arc)-1] != s {
			arc = append(arc, s)
		}
	}
	if len(arc) == 0 {
		return "PASS (no traffic)"
	}
	line := arc[0]
	for _, s := range arc[1:] {
		line += "->" + s
	}
	if len(arc) >= 3 && arc[len(arc)-1] == "PASS" {
		line += " (recovered)"
	}
	return line
}

// ms formats virtual nanoseconds as milliseconds with fixed precision.
func ms(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// WriteSummary writes the one-service summary block: offered vs achieved
// throughput over the horizon and the pooled latency percentiles.
// horizonNs is the traffic horizon (the configured duration) used for the
// offered rate; the achieved rate uses the same horizon so the two are
// comparable (a saturated service completes work after the horizon too,
// but its *rate* during the run is what capacity means).
func (t *Tracker) WriteSummary(w io.Writer, horizonNs int64) {
	secs := float64(horizonNs) / 1e9
	if secs <= 0 {
		secs = 1
	}
	okDone := t.Completed - t.Errors
	fmt.Fprintf(w, "requests: offered %d (%.0f/s), completed %d (%.0f/s ok), errors %d\n",
		t.Offered, float64(t.Offered)/secs, t.Completed, float64(okDone)/secs, t.Errors)
	fmt.Fprintf(w, "latency (ms): p50 %s  p95 %s  p99 %s  p999 %s  mean %s  max %s\n",
		ms(t.Total.Quantile(0.50)), ms(t.Total.Quantile(0.95)),
		ms(t.Total.Quantile(0.99)), ms(t.Total.Quantile(0.999)),
		ms(t.Total.Mean()), ms(t.Total.Max()))
}

// WriteWindows writes the per-window table: arrivals, completions, errors,
// latency percentiles, queue depth at window end, and the SLO verdict.
func (t *Tracker) WriteWindows(w io.Writer, o Objective) {
	vs := t.Verdicts(o)
	fmt.Fprintf(w, "%-14s %8s %8s %6s %10s %10s %9s  %s\n",
		"window", "arrive", "done", "errs", "p50 (ms)", "p99 (ms)", "inflight", "slo")
	for i := range t.windows {
		win := &t.windows[i]
		label := fmt.Sprintf("%.0f-%.0fms",
			float64(int64(i)*t.WindowNs)/1e6, float64(int64(i+1)*t.WindowNs)/1e6)
		verdict := "pass"
		if !vs[i].Pass {
			verdict = "FAIL"
		}
		if win.Arrivals == 0 {
			verdict = "-"
		}
		fmt.Fprintf(w, "%-14s %8d %8d %6d %10s %10s %9d  %s\n",
			label, win.Arrivals, win.Done, win.Errors,
			ms(win.Lat.Quantile(0.50)), ms(win.Lat.Quantile(0.99)),
			t.InFlightAtEnd(i), verdict)
	}
}
