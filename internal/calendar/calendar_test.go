package calendar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReserveEmpty(t *testing.T) {
	var c Calendar
	if got := c.Reserve(100, 50); got != 100 {
		t.Errorf("Reserve = %d, want 100", got)
	}
	if c.Busy() != 50 || c.Spans() != 1 {
		t.Errorf("busy=%d spans=%d", c.Busy(), c.Spans())
	}
}

func TestReserveQueuesBehindConflict(t *testing.T) {
	var c Calendar
	c.Reserve(100, 50) // [100,150)
	if got := c.Reserve(120, 10); got != 150 {
		t.Errorf("conflicting reserve = %d, want 150", got)
	}
}

func TestBackfillGap(t *testing.T) {
	var c Calendar
	c.Reserve(0, 10)    // [0,10)
	c.Reserve(1000, 10) // [1000,1010)
	// A later call for an earlier time must backfill the gap.
	if got := c.Reserve(20, 10); got != 20 {
		t.Errorf("backfill = %d, want 20", got)
	}
	// A request too big for the gap skips past it.
	if got := c.Reserve(35, 2000); got != 1010 {
		t.Errorf("oversized = %d, want 1010", got)
	}
}

func TestMergeAdjacent(t *testing.T) {
	var c Calendar
	c.Reserve(0, 10)
	c.Reserve(10, 10)
	c.Reserve(20, 10)
	if c.Spans() != 1 || c.Busy() != 30 {
		t.Errorf("spans=%d busy=%d, want 1/30", c.Spans(), c.Busy())
	}
}

func TestPrune(t *testing.T) {
	var c Calendar
	c.Reserve(0, 10)
	c.Reserve(100, 10)
	c.PruneBefore(50)
	if c.Spans() != 1 || c.Busy() != 10 {
		t.Errorf("after prune: spans=%d busy=%d", c.Spans(), c.Busy())
	}
}

func TestZeroDur(t *testing.T) {
	var c Calendar
	if got := c.Reserve(5, 0); got != 5 {
		t.Errorf("zero-dur reserve = %d", got)
	}
	if c.Spans() != 0 {
		t.Error("zero-dur reserved capacity")
	}
}

func TestNoOverlapProperty(t *testing.T) {
	// Property: random reservations never overlap, and total busy time
	// equals the sum of requested durations.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c Calendar
		type got struct{ s, e int64 }
		var all []got
		var sum int64
		for i := 0; i < 300; i++ {
			t0 := int64(rng.Intn(5000))
			d := int64(1 + rng.Intn(40))
			s := c.Reserve(t0, d)
			if s < t0 {
				return false // started before arrival
			}
			all = append(all, got{s, s + d})
			sum += d
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[i].s < all[j].e && all[j].s < all[i].e {
					return false // overlap
				}
			}
		}
		return c.Busy() == sum
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationStaysReasonable(t *testing.T) {
	// Two interleaved flows at 50% aggregate utilization must not serialize.
	var c Calendar
	var maxDelay int64
	for i := int64(0); i < 1000; i++ {
		d := c.Reserve(i*20, 5) - i*20
		if d > maxDelay {
			maxDelay = d
		}
	}
	for i := int64(0); i < 1000; i++ {
		d := c.Reserve(i*20+3, 5) - (i*20 + 3)
		if d > maxDelay {
			maxDelay = d
		}
	}
	if maxDelay > 10 {
		t.Errorf("max delay %d at 50%% load; calendar serializes", maxDelay)
	}
}
