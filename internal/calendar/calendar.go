// Package calendar provides a time-reservation calendar for single-capacity
// servers (memory modules, switch ports) in the discrete-event model.
//
// Higher layers charge whole inner loops in one engine event, booking server
// occupancy into the virtual future. A scalar busy-until would then starve
// any request that arrives later in wall-clock order but earlier in virtual
// time; the calendar instead keeps the set of reserved intervals and lets a
// request backfill the earliest gap at or after its arrival time, conserving
// capacity without false serialization.
package calendar

import "sort"

// interval is a half-open busy span [start, end).
type interval struct{ start, end int64 }

// Calendar tracks the reserved time of one unit-capacity server. The zero
// value is an empty calendar.
type Calendar struct {
	iv []interval // disjoint, sorted by start
}

// Reserve books dur nanoseconds of server time at the earliest instant no
// earlier than t, and returns that start time. dur must be positive.
func (c *Calendar) Reserve(t, dur int64) int64 {
	if dur <= 0 {
		return t
	}
	// Fast path: booking at or after the end of the schedule (the common
	// case for per-flow monotone bookings).
	if n := len(c.iv); n == 0 || t >= c.iv[n-1].end {
		if n > 0 && c.iv[n-1].end == t {
			c.iv[n-1].end = t + dur
		} else {
			c.iv = append(c.iv, interval{t, t + dur})
		}
		return t
	}
	// First interval that could conflict: the first with end > t.
	i := sort.Search(len(c.iv), func(i int) bool { return c.iv[i].end > t })
	start := t
	for ; i < len(c.iv); i++ {
		if start+dur <= c.iv[i].start {
			break // the gap before interval i fits
		}
		if c.iv[i].end > start {
			start = c.iv[i].end
		}
	}
	c.insert(i, start, start+dur)
	return start
}

// insert places [s,e) before index i, merging with adjacent neighbours.
func (c *Calendar) insert(i int, s, e int64) {
	mergePrev := i > 0 && c.iv[i-1].end == s
	mergeNext := i < len(c.iv) && c.iv[i].start == e
	switch {
	case mergePrev && mergeNext:
		c.iv[i-1].end = c.iv[i].end
		c.iv = append(c.iv[:i], c.iv[i+1:]...)
	case mergePrev:
		c.iv[i-1].end = e
	case mergeNext:
		c.iv[i].start = s
	default:
		c.iv = append(c.iv, interval{})
		copy(c.iv[i+1:], c.iv[i:])
		c.iv[i] = interval{s, e}
	}
}

// PruneBefore discards reservations that end at or before t. It is safe to
// call with any lower bound on future arrival times (typically the engine's
// current virtual time).
func (c *Calendar) PruneBefore(t int64) {
	n := 0
	for n < len(c.iv) && c.iv[n].end <= t {
		n++
	}
	if n > 0 {
		c.iv = append(c.iv[:0], c.iv[n:]...)
	}
}

// Busy reports the total reserved time currently tracked (after pruning,
// i.e. roughly the backlog); used by tests.
func (c *Calendar) Busy() int64 {
	var total int64
	for _, iv := range c.iv {
		total += iv.end - iv.start
	}
	return total
}

// Spans reports the number of disjoint reserved intervals (tests/diagnostics).
func (c *Calendar) Spans() int { return len(c.iv) }
