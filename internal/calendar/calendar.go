// Package calendar provides a time-reservation calendar for single-capacity
// servers (memory modules, switch ports) in the discrete-event model.
//
// Higher layers charge whole inner loops in one engine event, booking server
// occupancy into the virtual future. A scalar busy-until would then starve
// any request that arrives later in wall-clock order but earlier in virtual
// time; the calendar instead keeps the set of reserved intervals and lets a
// request backfill the earliest gap at or after its arrival time, conserving
// capacity without false serialization.
package calendar

// interval is a half-open busy span [start, end).
type interval struct{ start, end int64 }

// Calendar tracks the reserved time of one unit-capacity server. The zero
// value is an empty calendar.
type Calendar struct {
	iv []interval // disjoint, sorted by start
	// hint remembers where the last reservation landed. Requests are close
	// to monotone per flow, so the next search usually resolves at or just
	// after the hint without a binary search.
	hint int
	// Batch placement state: batchIv collects reservations placed against a
	// frozen schedule (see BeginBatch); batchIdx is the monotone walk cursor;
	// mergeBuf is reused scratch for the commit splice.
	batchIv  []interval
	batchIdx int
	inBatch  bool
	mergeBuf []interval
}

// Reserve books dur nanoseconds of server time at the earliest instant no
// earlier than t, and returns that start time. dur must be positive.
func (c *Calendar) Reserve(t, dur int64) int64 {
	if dur <= 0 {
		return t
	}
	// Fast path: booking at or after the end of the schedule (the common
	// case for per-flow monotone bookings).
	if n := len(c.iv); n == 0 || t >= c.iv[n-1].end {
		if n > 0 && c.iv[n-1].end == t {
			c.iv[n-1].end = t + dur
		} else {
			c.iv = append(c.iv, interval{t, t + dur})
		}
		c.hint = len(c.iv) - 1
		return t
	}
	i := c.searchEndAfter(t)
	start := t
	for ; i < len(c.iv); i++ {
		if start+dur <= c.iv[i].start {
			break // the gap before interval i fits
		}
		if c.iv[i].end > start {
			start = c.iv[i].end
		}
	}
	c.insert(i, start, start+dur)
	return start
}

// searchEndAfter returns the index of the first interval with end > t,
// starting from the hint when it is consistent and falling back to a binary
// search otherwise.
func (c *Calendar) searchEndAfter(t int64) int {
	iv := c.iv
	n := len(iv)
	if h := c.hint; h >= 0 && h < n && (h == 0 || iv[h-1].end <= t) {
		// The answer is at or after the hint; scan a few steps before giving
		// up on locality.
		for i := h; i < n && i < h+8; i++ {
			if iv[i].end > t {
				return i
			}
		}
		lo, hi := h+8, n
		if lo > hi {
			return n
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if iv[mid].end > t {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if iv[mid].end > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ReserveRun books a chain of n reservations of dur nanoseconds each, where
// the first request arrives at t and each subsequent request arrives gap
// nanoseconds after the previous reservation's end — the word-at-a-time
// remote reference pattern (fixed network round trip between words). It is
// an exact fold of n sequential Reserve calls and returns the start of the
// last reservation plus the total queueing delay across the run.
func (c *Calendar) ReserveRun(t, dur, gap int64, n int) (lastStart, totalWait int64) {
	if n <= 0 || dur <= 0 {
		return t, 0
	}
	// Fast path: the whole run lands at or beyond the schedule tail, so
	// every request is granted at its arrival time.
	if m := len(c.iv); m == 0 || t >= c.iv[m-1].end {
		if m > 0 && c.iv[m-1].end == t {
			c.iv[m-1].end = t + dur
		} else {
			c.iv = append(c.iv, interval{t, t + dur})
		}
		if gap == 0 {
			c.iv[len(c.iv)-1].end = t + int64(n)*dur
		} else {
			stride := dur + gap
			for i := 1; i < n; i++ {
				s := t + int64(i)*stride
				c.iv = append(c.iv, interval{s, s + dur})
			}
		}
		c.hint = len(c.iv) - 1
		return t + int64(n-1)*(dur+gap), 0
	}
	req := t
	for i := 0; i < n; i++ {
		s := c.Reserve(req, dur)
		totalWait += s - req
		lastStart = s
		req = s + dur + gap
	}
	return lastStart, totalWait
}

// BeginBatch starts a placement batch: reservations made with BatchReserve
// are placed against the current schedule without mutating it and spliced in
// all at once by CommitBatch. A batch requires a monotone flow — each
// request must arrive at or after the previous batch reservation's end —
// which guarantees the batch's own pending reservations can never constrain
// a later placement, so placing against the frozen schedule is exact.
// Repeated single inserts each shift the schedule tail; a batch of k
// reservations into a schedule of m intervals costs one O(m+k) merge
// instead of k shifts.
func (c *Calendar) BeginBatch() {
	c.batchIv = c.batchIv[:0]
	c.batchIdx = -1
	c.inBatch = true
}

// InBatch reports whether a batch is open.
func (c *Calendar) InBatch() bool { return c.inBatch }

// BatchReserve books dur nanoseconds at the earliest instant no earlier
// than t within the open batch and returns that start. t must be no earlier
// than the end of the batch's previous reservation.
func (c *Calendar) BatchReserve(t, dur int64) int64 {
	if dur <= 0 {
		return t
	}
	idx := c.batchIdx
	if idx < 0 {
		idx = c.searchEndAfter(t)
	}
	iv := c.iv
	start := t
	for idx < len(iv) {
		if start+dur <= iv[idx].start {
			break // the gap before interval idx fits
		}
		if iv[idx].end > start {
			start = iv[idx].end
		}
		// This interval now ends at or before start, so it can never matter
		// again: later arrivals in the (monotone) batch are >= start+dur.
		idx++
	}
	c.batchIdx = idx
	if m := len(c.batchIv); m > 0 && c.batchIv[m-1].end == start {
		c.batchIv[m-1].end = start + dur
	} else {
		c.batchIv = append(c.batchIv, interval{start, start + dur})
	}
	return start
}

// BatchReserveRun is ReserveRun within the open batch: n chained requests
// of dur nanoseconds, each arriving gap nanoseconds after the previous
// reservation's end.
func (c *Calendar) BatchReserveRun(t, dur, gap int64, n int) (lastStart, totalWait int64) {
	if n <= 0 || dur <= 0 {
		return t, 0
	}
	req := t
	for i := 0; i < n; i++ {
		s := c.BatchReserve(req, dur)
		totalWait += s - req
		lastStart = s
		req = s + dur + gap
	}
	return lastStart, totalWait
}

// Scratch is reusable merge scratch for CommitBatch. One Scratch may be
// shared by any number of calendars whose commits are sequential (e.g. all
// memory modules of one machine), so each machine grows one buffer instead
// of one per module.
type Scratch struct{ buf []interval }

// CommitBatch splices the batch's reservations into the schedule with a
// single merge pass and closes the batch, using the calendar's own scratch.
func (c *Calendar) CommitBatch() { c.commit(&c.mergeBuf) }

// CommitBatchScratch is CommitBatch with caller-provided merge scratch.
func (c *Calendar) CommitBatchScratch(s *Scratch) { c.commit(&s.buf) }

// commit splices the batch into the schedule. Only the window of existing
// intervals that interleave with the batch's time range is merged
// element-wise; the untouched suffix moves with one bulk copy.
func (c *Calendar) commit(scratch *[]interval) {
	news := c.batchIv
	c.inBatch = false
	if len(news) == 0 {
		return
	}
	lo := c.searchEndAfter(news[0].start)
	lastEnd := news[len(news)-1].end
	// hi is the first interval at or past the batch's range: intervals from
	// there on cannot interleave with it (at most touch, handled below).
	hi := lo
	for hi < len(c.iv) && hi < lo+8 && c.iv[hi].start < lastEnd {
		hi++
	}
	if hi == lo+8 && hi < len(c.iv) && c.iv[hi].start < lastEnd {
		x, y := hi, len(c.iv)
		for x < y {
			mid := int(uint(x+y) >> 1)
			if c.iv[mid].start < lastEnd {
				x = mid + 1
			} else {
				y = mid
			}
		}
		hi = x
	}
	var merged []interval
	if lo == hi {
		// No existing interval interleaves with the batch's range (the common
		// case: the batch lands in open schedule); insert the block verbatim.
		merged = news
	} else {
		// Merge the window and the new intervals (both sorted, mutually
		// disjoint), coalescing touching spans exactly as repeated insert
		// would. Once one side runs out, the other's remainder is already
		// coalesced internally and moves with a single bulk copy.
		window := c.iv[lo:hi]
		if maxLen := len(window) + len(news); cap(*scratch) < maxLen {
			*scratch = make([]interval, 0, maxLen+maxLen/2)
		}
		merged = (*scratch)[:cap(*scratch)]
		k := 0
		wi, ni := 0, 0
		for wi < len(window) && ni < len(news) {
			var v interval
			if news[ni].start < window[wi].start {
				v = news[ni]
				ni++
			} else {
				v = window[wi]
				wi++
			}
			if k > 0 && merged[k-1].end == v.start {
				merged[k-1].end = v.end
			} else {
				merged[k] = v
				k++
			}
		}
		if rem := news[ni:]; len(rem) > 0 {
			if k > 0 && merged[k-1].end == rem[0].start {
				merged[k-1].end = rem[0].end
				rem = rem[1:]
			}
			k += copy(merged[k:], rem)
		}
		if rem := window[wi:]; len(rem) > 0 {
			if k > 0 && merged[k-1].end == rem[0].start {
				merged[k-1].end = rem[0].end
				rem = rem[1:]
			}
			k += copy(merged[k:], rem)
		}
		merged = merged[:k]
	}
	// Coalesce across the window boundaries, as repeated insert would.
	if lo > 0 && c.iv[lo-1].end == merged[0].start {
		c.iv[lo-1].end = merged[0].end
		merged = merged[1:]
	}
	if hi < len(c.iv) {
		if m := len(merged); m > 0 {
			if merged[m-1].end == c.iv[hi].start {
				merged[m-1].end = c.iv[hi].end
				hi++
			}
		} else if c.iv[lo-1].end == c.iv[hi].start {
			// The whole batch collapsed into iv[lo-1], bridging it to iv[hi].
			c.iv[lo-1].end = c.iv[hi].end
			hi++
		}
	}
	// Splice: iv = iv[:lo] + merged + iv[hi:], moving the suffix once.
	tailLen := len(c.iv) - hi
	need := lo + len(merged) + tailLen
	if need <= cap(c.iv) {
		old := c.iv
		c.iv = c.iv[:need]
		copy(c.iv[lo+len(merged):], old[hi:hi+tailLen])
		copy(c.iv[lo:], merged)
	} else {
		grown := append(make([]interval, 0, need+need/2), c.iv[:lo]...)
		grown = append(grown, merged...)
		grown = append(grown, c.iv[hi:]...)
		c.iv = grown
	}
	// The next reservation in this flow lands at or after the batch's last
	// placement, which sits at the end of the merged window.
	if h := lo + len(merged) - 1; h >= 0 {
		c.hint = h
	} else {
		c.hint = 0
	}
}

// insert places [s,e) before index i, merging with adjacent neighbours.
func (c *Calendar) insert(i int, s, e int64) {
	mergePrev := i > 0 && c.iv[i-1].end == s
	mergeNext := i < len(c.iv) && c.iv[i].start == e
	switch {
	case mergePrev && mergeNext:
		c.iv[i-1].end = c.iv[i].end
		c.iv = append(c.iv[:i], c.iv[i+1:]...)
	case mergePrev:
		c.iv[i-1].end = e
	case mergeNext:
		c.iv[i].start = s
	default:
		c.iv = append(c.iv, interval{})
		copy(c.iv[i+1:], c.iv[i:])
		c.iv[i] = interval{s, e}
	}
	if i < len(c.iv) {
		c.hint = i
	} else {
		c.hint = len(c.iv) - 1
	}
}

// PruneBefore discards reservations that end at or before t. It is safe to
// call with any lower bound on future arrival times (typically the engine's
// current virtual time).
func (c *Calendar) PruneBefore(t int64) {
	n := 0
	for n < len(c.iv) && c.iv[n].end <= t {
		n++
	}
	if n > 0 {
		c.iv = append(c.iv[:0], c.iv[n:]...)
		if c.hint -= n; c.hint < 0 {
			c.hint = 0
		}
	}
}

// Busy reports the total reserved time currently tracked (after pruning,
// i.e. roughly the backlog); used by tests.
func (c *Calendar) Busy() int64 {
	var total int64
	for _, iv := range c.iv {
		total += iv.end - iv.start
	}
	return total
}

// Spans reports the number of disjoint reserved intervals (tests/diagnostics).
func (c *Calendar) Spans() int { return len(c.iv) }
