package calendar

import (
	"math/rand"
	"testing"
)

// refCalendar is the obviously-correct model: a sorted slice of disjoint
// half-open intervals with naive linear placement and insertion. The real
// Calendar's hinted search, run folding, and batch splicing must agree with
// it on every operation.
type refCalendar struct {
	iv []interval
}

func (r *refCalendar) reserve(t, dur int64) int64 {
	if dur <= 0 {
		return t
	}
	start := t
	for _, v := range r.iv {
		if v.end <= start {
			continue
		}
		if start+dur <= v.start {
			break
		}
		start = v.end
	}
	// Insert [start, start+dur) keeping the slice sorted and coalesced.
	i := 0
	for i < len(r.iv) && r.iv[i].start < start {
		i++
	}
	r.iv = append(r.iv, interval{})
	copy(r.iv[i+1:], r.iv[i:])
	r.iv[i] = interval{start, start + dur}
	// Coalesce touching neighbours.
	out := r.iv[:1]
	for _, v := range r.iv[1:] {
		if last := &out[len(out)-1]; last.end == v.start {
			last.end = v.end
		} else {
			out = append(out, v)
		}
	}
	r.iv = out
	return start
}

func (r *refCalendar) reserveRun(t, dur, gap int64, n int) (lastStart, totalWait int64) {
	if n <= 0 || dur <= 0 {
		return t, 0
	}
	req := t
	for i := 0; i < n; i++ {
		s := r.reserve(req, dur)
		totalWait += s - req
		lastStart = s
		req = s + dur + gap
	}
	return lastStart, totalWait
}

func (r *refCalendar) pruneBefore(t int64) {
	n := 0
	for n < len(r.iv) && r.iv[n].end <= t {
		n++
	}
	r.iv = append(r.iv[:0], r.iv[n:]...)
}

func (r *refCalendar) busy() int64 {
	var total int64
	for _, v := range r.iv {
		total += v.end - v.start
	}
	return total
}

// driveOps feeds one pseudo-random operation sequence to a Calendar and the
// reference model and fails on the first divergence. Arrival times are kept
// at or after the prune floor, matching PruneBefore's contract.
func driveOps(t *testing.T, rng *rand.Rand, ops int) {
	t.Helper()
	var cal Calendar
	var ref refCalendar
	var floor int64 // monotone lower bound on future arrivals
	check := func(op string, got, want int64) {
		t.Helper()
		if got != want {
			t.Fatalf("%s diverged: calendar %d, model %d", op, got, want)
		}
		if cal.Busy() != ref.busy() || cal.Spans() != len(ref.iv) {
			t.Fatalf("after %s: calendar busy=%d spans=%d, model busy=%d spans=%d",
				op, cal.Busy(), cal.Spans(), ref.busy(), len(ref.iv))
		}
	}
	arrival := func() int64 { return floor + rng.Int63n(2000) }
	for i := 0; i < ops; i++ {
		switch rng.Intn(5) {
		case 0, 1: // single reservation (two slots: the most common op)
			at, dur := arrival(), 1+rng.Int63n(50)
			check("Reserve", cal.Reserve(at, dur), ref.reserve(at, dur))
		case 2: // chained run, possibly with gaps
			at, dur, gap, n := arrival(), 1+rng.Int63n(30), rng.Int63n(3)*rng.Int63n(40), 1+rng.Intn(6)
			gs, gw := cal.ReserveRun(at, dur, gap, n)
			ws, ww := ref.reserveRun(at, dur, gap, n)
			if gw != ww {
				t.Fatalf("ReserveRun wait diverged: calendar %d, model %d", gw, ww)
			}
			check("ReserveRun", gs, ws)
		case 3: // batch: a monotone flow placed against a frozen schedule
			cal.BeginBatch()
			k := 1 + rng.Intn(8)
			at := arrival()
			starts := make([]int64, 0, k)
			durs := make([]int64, 0, k)
			for j := 0; j < k; j++ {
				dur := 1 + rng.Int63n(40)
				s := cal.BatchReserve(at, dur)
				starts = append(starts, s)
				durs = append(durs, dur)
				at = s + dur + rng.Int63n(3)*rng.Int63n(60) // next arrival ≥ this end
			}
			cal.CommitBatch()
			// A committed batch must equal the same flow folded through the
			// model's sequential reserves.
			for j := range starts {
				if ws := ref.reserve(starts[j], durs[j]); ws != starts[j] {
					t.Fatalf("BatchReserve diverged: calendar start %d, model start %d", starts[j], ws)
				}
			}
			check("CommitBatch", 0, 0)
		case 4: // advance the clock and prune history
			floor += rng.Int63n(500)
			cal.PruneBefore(floor)
			ref.pruneBefore(floor)
			check("PruneBefore", 0, 0)
		}
	}
}

// TestCalendarRandomAgainstModel drives many independent random op sequences
// through Calendar and the reference model.
func TestCalendarRandomAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed))
		driveOps(t, rng, 300)
	}
}

// FuzzCalendar lets the fuzzer pick the seed and sequence length; `go test`
// runs the seed corpus, `go test -fuzz=FuzzCalendar` explores.
func FuzzCalendar(f *testing.F) {
	f.Add(int64(1), uint16(50))
	f.Add(int64(42), uint16(400))
	f.Add(int64(-7), uint16(1000))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		driveOps(t, rand.New(rand.NewSource(seed)), int(ops)%1024)
	})
}
