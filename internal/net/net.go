// Package net implements NET (Hinkelman, BPR 5; §3.2 of the paper), the
// first systems package developed for the Butterfly at Rochester: a utility
// for building regular rectangular process meshes — lines, rings, cylinders,
// and tori — whose elements are connected to their neighbours by byte
// streams. "Where Chrysalis required over 100 lines of code to create a
// single process, NET could create a mesh of processes, including
// communication connections, in half a page of code."
//
// NET predates SMP's typed messages: its streams carry raw bytes with no
// message boundaries, like Unix pipes between neighbouring processes.
package net

import (
	"errors"
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Shape selects the mesh topology.
type Shape int

// Mesh shapes, in NET's vocabulary.
const (
	// ShapeLine connects element i to i+1 along one dimension.
	ShapeLine Shape = iota
	// ShapeRing closes a line into a cycle.
	ShapeRing
	// ShapeGrid is a W x H rectangle with 4-neighbour connections.
	ShapeGrid
	// ShapeCylinder wraps the grid's X dimension.
	ShapeCylinder
	// ShapeTorus wraps both dimensions.
	ShapeTorus
)

func (s Shape) String() string {
	switch s {
	case ShapeLine:
		return "line"
	case ShapeRing:
		return "ring"
	case ShapeGrid:
		return "grid"
	case ShapeCylinder:
		return "cylinder"
	case ShapeTorus:
		return "torus"
	}
	return "unknown"
}

// Config describes a mesh.
type Config struct {
	Shape Shape
	// W and H are the mesh dimensions (H is 1 for lines and rings).
	W, H int
	// StreamBuf is the byte-stream buffer capacity per connection.
	StreamBuf int
}

// Element is one mesh process's view: its coordinates and the streams to its
// neighbours.
type Element struct {
	X, Y int
	Pr   *chrysalis.Process
	P    *sim.Proc

	mesh *Mesh
	// streams[d] connects to the neighbour in direction d, or nil.
	streams [4]*Stream
}

// Directions index Element streams.
const (
	East = iota
	West
	North
	South
)

// DirName returns a direction's name.
func DirName(d int) string {
	return [...]string{"east", "west", "north", "south"}[d]
}

// Mesh is a built process mesh.
type Mesh struct {
	Cfg      Config
	OS       *chrysalis.OS
	Elements []*Element
}

// Stream is a unidirectional byte stream between two neighbouring elements,
// implemented over a shared-memory ring buffer on the reader's node with a
// Chrysalis dual queue carrying chunk descriptors.
type Stream struct {
	os       *chrysalis.OS
	fromNode int
	toNode   int
	q        *chrysalis.DualQueue
	buf      []byte
	// chunks holds the byte counts of queued writes; the dual queue datum
	// indexes it. Data bytes are carried natively in data.
	data map[uint32][]byte
	next uint32
}

// newStream builds a stream homed on the reader's node.
func newStream(os *chrysalis.OS, fromNode, toNode, capacity int) *Stream {
	return &Stream{
		os:       os,
		fromNode: fromNode,
		toNode:   toNode,
		q:        os.NewDualQueue(toNode, nil),
		buf:      make([]byte, 0, capacity),
		data:     make(map[uint32][]byte),
	}
}

// Write sends bytes downstream. The writer is charged the block transfer to
// the reader's node plus the enqueue of a chunk descriptor.
func (s *Stream) Write(p *sim.Proc, b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	words := (len(b) + 3) / 4
	s.os.M.BlockCopy(p, p.Node, s.toNode, words)
	id := s.next
	s.next++
	s.data[id] = append([]byte(nil), b...)
	s.q.Enqueue(p, id)
	return len(b), nil
}

// Read receives at least one byte (blocking) and at most len(b) bytes,
// returning the count — Unix pipe semantics over the simulated machine.
func (s *Stream) Read(p *sim.Proc, b []byte) (int, error) {
	if len(b) == 0 {
		return 0, nil
	}
	// Drain buffered bytes first.
	if len(s.buf) == 0 {
		id := s.q.Dequeue(p)
		chunk := s.data[id]
		delete(s.data, id)
		s.buf = append(s.buf, chunk...)
		// Local copy out of the ring buffer.
		s.os.M.Read(p, p.Node, (len(chunk)+3)/4)
	}
	n := copy(b, s.buf)
	s.buf = append(s.buf[:0], s.buf[n:]...)
	return n, nil
}

// ReadFull reads exactly len(b) bytes.
func (s *Stream) ReadFull(p *sim.Proc, b []byte) error {
	got := 0
	for got < len(b) {
		n, err := s.Read(p, b[got:])
		if err != nil {
			return err
		}
		got += n
	}
	return nil
}

// Pending reports buffered chunks not yet read (diagnostics).
func (s *Stream) Pending() int { return len(s.data) }

// Build creates the mesh: one Chrysalis process per element (assigned
// round-robin to machine nodes), all neighbour streams connected, and body
// running as each element. This is NET's half-page-of-code pitch: the caller
// provides only the shape and the element body.
func Build(os *chrysalis.OS, cfg Config, body func(e *Element)) (*Mesh, error) {
	if cfg.W <= 0 {
		return nil, errors.New("net: mesh width must be positive")
	}
	if cfg.H <= 0 {
		cfg.H = 1
	}
	if cfg.StreamBuf <= 0 {
		cfg.StreamBuf = 4096
	}
	switch cfg.Shape {
	case ShapeLine, ShapeRing:
		if cfg.H != 1 {
			return nil, fmt.Errorf("net: %v must have H == 1", cfg.Shape)
		}
		if cfg.W < 2 {
			return nil, fmt.Errorf("net: %v needs W >= 2", cfg.Shape)
		}
	case ShapeGrid, ShapeCylinder, ShapeTorus:
		if cfg.W < 2 || cfg.H < 2 {
			return nil, fmt.Errorf("net: %v needs W,H >= 2", cfg.Shape)
		}
	default:
		return nil, fmt.Errorf("net: unknown shape %d", cfg.Shape)
	}
	mesh := &Mesh{Cfg: cfg, OS: os}
	n := cfg.W * cfg.H
	nodes := os.M.N()
	for i := 0; i < n; i++ {
		mesh.Elements = append(mesh.Elements, &Element{X: i % cfg.W, Y: i / cfg.W, mesh: mesh})
	}
	// Wire the streams (one per direction per connected pair).
	wrapX := cfg.Shape == ShapeRing || cfg.Shape == ShapeCylinder || cfg.Shape == ShapeTorus
	wrapY := cfg.Shape == ShapeTorus
	at := func(x, y int) *Element { return mesh.Elements[y*cfg.W+x] }
	nodeOf := func(e *Element) int { return (e.Y*cfg.W + e.X) % nodes }
	// Wiring convention: an element's streams are the ones it READS,
	// indexed by the direction the data arrives from; writing east delivers
	// into the east neighbour's West input (see Element.Out).
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			e := at(x, y)
			// East neighbour.
			if x+1 < cfg.W || wrapX {
				nb := at((x+1)%cfg.W, y)
				// Stream carrying e's data to nb (nb reads from West).
				nb.streams[West] = newStream(os, nodeOf(e), nodeOf(nb), cfg.StreamBuf)
				// Stream carrying nb's data to e (e reads from East).
				e.streams[East] = newStream(os, nodeOf(nb), nodeOf(e), cfg.StreamBuf)
			}
			// South neighbour.
			if cfg.H > 1 && (y+1 < cfg.H || wrapY) {
				nb := at(x, (y+1)%cfg.H)
				nb.streams[North] = newStream(os, nodeOf(e), nodeOf(nb), cfg.StreamBuf)
				e.streams[South] = newStream(os, nodeOf(nb), nodeOf(e), cfg.StreamBuf)
			}
		}
	}
	// Spawn the element processes.
	for i, e := range mesh.Elements {
		e := e
		pr, err := os.MakeProcess(nil, fmt.Sprintf("net[%d,%d]", e.X, e.Y), i%nodes, 32, func(self *chrysalis.Process) {
			e.Pr = self
			e.P = self.P
			body(e)
		})
		if err != nil {
			return nil, err
		}
		e.Pr = pr
	}
	return mesh, nil
}

// In returns the stream delivering data from the neighbour in direction d,
// or nil at a mesh edge.
func (e *Element) In(d int) *Stream { return e.streams[d] }

// Out returns the stream that carries this element's writes toward the
// neighbour in direction d, or nil at an edge. (Writing east delivers to the
// east neighbour's West input.)
func (e *Element) Out(d int) *Stream {
	m := e.mesh
	wrapX := m.Cfg.Shape == ShapeRing || m.Cfg.Shape == ShapeCylinder || m.Cfg.Shape == ShapeTorus
	wrapY := m.Cfg.Shape == ShapeTorus
	at := func(x, y int) *Element { return m.Elements[y*m.Cfg.W+x] }
	switch d {
	case East:
		if e.X+1 < m.Cfg.W || wrapX {
			return at((e.X+1)%m.Cfg.W, e.Y).streams[West]
		}
	case West:
		if e.X > 0 || wrapX {
			return at((e.X-1+m.Cfg.W)%m.Cfg.W, e.Y).streams[East]
		}
	case South:
		if m.Cfg.H > 1 && (e.Y+1 < m.Cfg.H || wrapY) {
			return at(e.X, (e.Y+1)%m.Cfg.H).streams[North]
		}
	case North:
		if m.Cfg.H > 1 && (e.Y > 0 || wrapY) {
			return at(e.X, (e.Y-1+m.Cfg.H)%m.Cfg.H).streams[South]
		}
	}
	return nil
}
