package net

import (
	"bytes"
	"fmt"
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
)

func newOS(t *testing.T, nodes int) *chrysalis.OS {
	t.Helper()
	return chrysalis.New(machine.New(machine.DefaultConfig(nodes)))
}

func TestRingPipeline(t *testing.T) {
	// A ring of 4 elements passes a token around, each appending its X.
	os := newOS(t, 4)
	var got []byte
	_, err := Build(os, Config{Shape: ShapeRing, W: 4}, func(e *Element) {
		if e.X == 0 {
			if _, err := e.Out(East).Write(e.P, []byte{0}); err != nil {
				t.Errorf("write: %v", err)
			}
			buf := make([]byte, 4)
			if err := e.In(West).ReadFull(e.P, buf); err != nil {
				t.Errorf("read: %v", err)
			}
			got = buf
		} else {
			buf := make([]byte, e.X)
			if err := e.In(West).ReadFull(e.P, buf); err != nil {
				t.Errorf("read: %v", err)
			}
			buf = append(buf, byte(e.X))
			if _, err := e.Out(East).Write(e.P, buf); err != nil {
				t.Errorf("write: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !bytes.Equal(got, []byte{0, 1, 2, 3}) {
		t.Errorf("token = %v", got)
	}
}

func TestLineHasEdges(t *testing.T) {
	os := newOS(t, 3)
	_, err := Build(os, Config{Shape: ShapeLine, W: 3}, func(e *Element) {
		if e.X == 0 && (e.In(West) != nil || e.Out(West) != nil) {
			t.Error("west edge connected on a line")
		}
		if e.X == 2 && (e.In(East) != nil || e.Out(East) != nil) {
			t.Error("east edge connected on a line")
		}
		if e.In(North) != nil || e.In(South) != nil {
			t.Error("line has vertical streams")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGridNeighbours(t *testing.T) {
	os := newOS(t, 6)
	// 3x2 grid: send each element's coordinate east and south; verify.
	type msg struct{ x, y byte }
	_, err := Build(os, Config{Shape: ShapeGrid, W: 3, H: 2}, func(e *Element) {
		if out := e.Out(East); out != nil {
			out.Write(e.P, []byte{byte(e.X), byte(e.Y)})
		}
		if out := e.Out(South); out != nil {
			out.Write(e.P, []byte{byte(e.X), byte(e.Y)})
		}
		if in := e.In(West); in != nil {
			b := make([]byte, 2)
			if err := in.ReadFull(e.P, b); err != nil {
				t.Errorf("read west: %v", err)
			}
			if m := (msg{b[0], b[1]}); m.x != byte(e.X-1) || m.y != byte(e.Y) {
				t.Errorf("(%d,%d) west got %v", e.X, e.Y, m)
			}
		}
		if in := e.In(North); in != nil {
			b := make([]byte, 2)
			if err := in.ReadFull(e.P, b); err != nil {
				t.Errorf("read north: %v", err)
			}
			if m := (msg{b[0], b[1]}); m.x != byte(e.X) || m.y != byte(e.Y-1) {
				t.Errorf("(%d,%d) north got %v", e.X, e.Y, m)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTorusWrap(t *testing.T) {
	os := newOS(t, 4)
	_, err := Build(os, Config{Shape: ShapeTorus, W: 2, H: 2}, func(e *Element) {
		// Every direction is connected on a torus.
		for d := 0; d < 4; d++ {
			if e.In(d) == nil || e.Out(d) == nil {
				t.Errorf("(%d,%d) direction %s unconnected", e.X, e.Y, DirName(d))
			}
		}
		// Exchange with the east neighbour (same as west on a 2-torus...
		// write east, read west).
		e.Out(East).Write(e.P, []byte{byte(10*e.X + e.Y)})
		b := make([]byte, 1)
		if err := e.In(West).ReadFull(e.P, b); err != nil {
			t.Errorf("read: %v", err)
		}
		wantX := (e.X + 1) % 2 // on W=2 the west neighbour is also x+1
		if b[0] != byte(10*wantX+e.Y) {
			t.Errorf("(%d,%d) got %d", e.X, e.Y, b[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestStreamByteSemantics(t *testing.T) {
	// Reads may return fewer bytes than asked (pipe semantics), and
	// writes/reads preserve content across chunk boundaries.
	os := newOS(t, 2)
	payload := []byte("the quick brown butterfly")
	var got []byte
	_, err := Build(os, Config{Shape: ShapeLine, W: 2}, func(e *Element) {
		if e.X == 0 {
			for i := 0; i < len(payload); i += 5 {
				end := i + 5
				if end > len(payload) {
					end = len(payload)
				}
				e.Out(East).Write(e.P, payload[i:end])
			}
		} else {
			buf := make([]byte, len(payload))
			if err := e.In(West).ReadFull(e.P, buf); err != nil {
				t.Errorf("read: %v", err)
			}
			got = buf
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("got %q", got)
	}
}

func TestPartialRead(t *testing.T) {
	os := newOS(t, 2)
	_, err := Build(os, Config{Shape: ShapeLine, W: 2}, func(e *Element) {
		if e.X == 0 {
			e.Out(East).Write(e.P, []byte("abcdef"))
		} else {
			small := make([]byte, 2)
			n, err := e.In(West).Read(e.P, small)
			if err != nil || n != 2 || string(small) != "ab" {
				t.Errorf("first read = %q,%d,%v", small, n, err)
			}
			rest := make([]byte, 4)
			if err := e.In(West).ReadFull(e.P, rest); err != nil || string(rest) != "cdef" {
				t.Errorf("rest = %q,%v", rest, err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBadConfigs(t *testing.T) {
	os := newOS(t, 2)
	cases := []Config{
		{Shape: ShapeLine, W: 1},
		{Shape: ShapeGrid, W: 1, H: 5},
		{Shape: ShapeRing, W: 3, H: 2},
		{Shape: Shape(99), W: 2},
		{Shape: ShapeLine, W: 0},
	}
	for i, c := range cases {
		if _, err := Build(os, c, func(e *Element) {}); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestShapeNames(t *testing.T) {
	for s := ShapeLine; s <= ShapeTorus; s++ {
		if s.String() == "unknown" {
			t.Errorf("shape %d has no name", s)
		}
	}
	if Shape(42).String() != "unknown" {
		t.Error("bogus shape named")
	}
	for d := 0; d < 4; d++ {
		if DirName(d) == "" {
			t.Error("empty direction name")
		}
	}
}

func TestHalfPageOfCode(t *testing.T) {
	// The NET pitch: a whole mesh with connected streams from one call.
	os := newOS(t, 8)
	count := 0
	mesh, err := Build(os, Config{Shape: ShapeCylinder, W: 4, H: 2}, func(e *Element) {
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 8 || len(mesh.Elements) != 8 {
		t.Errorf("count=%d elements=%d", count, len(mesh.Elements))
	}
	// Cylinder: X wraps, Y does not.
	e00 := mesh.Elements[0]
	if e00.Out(West) == nil {
		t.Error("cylinder X did not wrap")
	}
	if e00.Out(North) != nil {
		t.Error("cylinder Y wrapped")
	}
	_ = fmt.Sprint(mesh.Cfg.Shape)
}
