package smp

import (
	"errors"
	"fmt"
	"sync"

	"butterfly/internal/chrysalis"
	"butterfly/internal/fault"
	"butterfly/internal/sim"
)

// Config tunes an SMP family.
type Config struct {
	// UseSARCache enables the cache of mapped message buffers that delays
	// unmap operations as long as possible.
	UseSARCache bool
	// SARCacheSize is the number of peer buffers a member keeps mapped
	// (bounded by the SARs the process can spare).
	SARCacheSize int
	// BufferTouchNs is the buffer management cost on a SAR-cache hit
	// (pointer juggling instead of a kernel map call).
	BufferTouchNs int64
}

// DefaultConfig returns the standard SMP tuning with the SAR cache enabled.
func DefaultConfig() Config {
	return Config{
		UseSARCache:   true,
		SARCacheSize:  16,
		BufferTouchNs: 250 * sim.Microsecond,
	}
}

// Message is an asynchronous SMP message. Payload is carried natively; Words
// is what the machine was charged for.
type Message struct {
	// From is the sender: a sibling index, ParentID for a message from the
	// family's creator, or ^childIndex for a message from a child family's
	// member (see Member.SendUp).
	From    int
	Tag     int
	Words   int
	Payload any
}

// ParentID is the pseudo-member index of the family's creator.
const ParentID = -1

// Family is a hierarchical collection of heavyweight processes with a static
// communication topology.
type Family struct {
	OS      *chrysalis.OS
	Name    string
	Topo    Topology
	Cfg     Config
	Members []*Member

	parent *Member // member of the parent family that created us, or nil
	stats  Stats
}

// Stats aggregates family-level counters.
type Stats struct {
	MessagesSent uint64
	WordsSent    uint64
	SARMapOps    uint64 // map/unmap kernel calls performed
	SARCacheHits uint64
}

// Member is one process of a family.
type Member struct {
	ID  int
	Fam *Family
	Pr  *chrysalis.Process
	P   *sim.Proc

	node     int
	inbox    *chrysalis.DualQueue
	mailbox  []Message
	free     []int
	sarCache *sarCache
}

// Node returns the machine node the member runs on.
func (m *Member) Node() int { return m.node }

// ErrNotNeighbours is returned for sends outside the family topology.
var ErrNotNeighbours = errors.New("smp: destination is not a neighbour in the family topology")

// ErrPeerDead is returned when the destination member's node has failed.
var ErrPeerDead = errors.New("smp: peer's node has failed")

// NewFamily creates an n-member family on the given nodes (one member per
// node, in order; the fixed allocation algorithm the paper notes "can lead
// to an imbalance in processor load"). creator, if non-nil, pays process
// creation costs serially, one member at a time — exactly the cost Crowd
// Control exists to parallelize. body runs as each member.
func NewFamily(os *chrysalis.OS, creator *Member, name string, nodes []int, topo Topology, cfg Config, body func(m *Member)) (*Family, error) {
	n := len(nodes)
	if err := topo.Validate(n); err != nil {
		return nil, err
	}
	if cfg.SARCacheSize <= 0 {
		cfg.SARCacheSize = DefaultConfig().SARCacheSize
	}
	if cfg.BufferTouchNs == 0 {
		cfg.BufferTouchNs = DefaultConfig().BufferTouchNs
	}
	f := &Family{OS: os, Name: name, Topo: topo, Cfg: cfg}
	if creator != nil {
		f.parent = creator
	}
	var creatorProc *sim.Proc
	if creator != nil {
		creatorProc = creator.P
	}
	for i := 0; i < n; i++ {
		m := &Member{ID: i, Fam: f, node: nodes[i]}
		m.inbox = os.NewDualQueue(nodes[i], nil)
		m.sarCache = newSARCache(cfg.SARCacheSize)
		f.Members = append(f.Members, m)
		pr, err := os.MakeProcess(creatorProc, fmt.Sprintf("%s[%d]", name, i), nodes[i], 64, func(self *chrysalis.Process) {
			m.Pr = self
			m.P = self.P
			m.register()
			body(m)
		})
		if err != nil {
			return nil, fmt.Errorf("smp: member %d: %w", i, err)
		}
		m.Pr = pr
	}
	return f, nil
}

// Stats returns a copy of the family counters.
func (f *Family) Stats() Stats { return f.stats }

// deliver places msg into dst's mailbox and posts its inbox. The sender
// pays: buffer management (SAR cache or a 1 ms map plus eventual unmap), a
// block copy of the payload to the receiver's node, and the enqueue. Under
// fault injection it returns ErrPeerDead for a failed destination and the
// *fault.RefError of a reference that failed mid-delivery.
func (f *Family) deliver(sender *sim.Proc, dst *Member, msg Message) (err error) {
	defer fault.CatchRef(&err)
	os := f.OS
	if os.M.NodeFailed(dst.node) {
		return ErrPeerDead
	}
	// Buffer management on the sender side.
	key := bufferKey{family: f, member: dst.ID}
	var cache *sarCache
	if src := memberOf(sender); src != nil && f.Cfg.UseSARCache {
		cache = src.sarCache
	}
	if cache != nil {
		if cache.touch(key) {
			f.stats.SARCacheHits++
			sender.Advance(f.Cfg.BufferTouchNs)
		} else {
			if evicted := cache.insert(key); evicted {
				// Delayed unmap finally happens.
				f.stats.SARMapOps++
				sender.Advance(os.Costs.UnmapObj)
			}
			f.stats.SARMapOps++
			sender.Advance(os.Costs.MapObj)
		}
	} else {
		// No cache: map before the copy, unmap after.
		f.stats.SARMapOps += 2
		sender.Advance(os.Costs.MapObj)
		defer sender.Advance(os.Costs.UnmapObj)
	}
	// Copy payload into the buffer on the receiver's node.
	if msg.Words > 0 {
		os.M.BlockCopy(sender, sender.Node, dst.node, msg.Words)
	}
	// Post the descriptor.
	if pr := os.M.Probe(); pr != nil {
		pr.MsgSend(sender.LocalNow(), sender.ID, dst.node, msg.Words, "smp")
	}
	slot := dst.put(msg)
	dst.inbox.Enqueue(sender, uint32(slot))
	f.stats.MessagesSent++
	f.stats.WordsSent += uint64(msg.Words)
	return nil
}

// memberOf maps a simulated process back to its SMP member, if any.
func memberOf(p *sim.Proc) *Member {
	pr, ok := p.Ctx.(*chrysalis.Process)
	if !ok {
		return nil
	}
	prMembersMu.RLock()
	m := prMembers[pr]
	prMembersMu.RUnlock()
	return m
}

// prMembers associates Chrysalis processes with SMP members. Each simulation
// is single-threaded, but independent simulations may run concurrently on
// lab workers; process pointers never collide across simulations, so the
// lock only protects the map structure itself.
var (
	prMembersMu sync.RWMutex
	prMembers   = map[*chrysalis.Process]*Member{}
)

// register must be called once the member's process exists.
func (m *Member) register() {
	if m.Pr != nil {
		prMembersMu.Lock()
		prMembers[m.Pr] = m
		prMembersMu.Unlock()
	}
}

// put stores a message and returns its mailbox slot.
func (m *Member) put(msg Message) int {
	if n := len(m.free); n > 0 {
		slot := m.free[n-1]
		m.free = m.free[:n-1]
		m.mailbox[slot] = msg
		return slot
	}
	m.mailbox = append(m.mailbox, msg)
	return len(m.mailbox) - 1
}

// Send transmits an asynchronous message to sibling dst. Only neighbours in
// the family topology are legal destinations.
func (m *Member) Send(dst, tag, words int, payload any) error {
	if dst < 0 || dst >= len(m.Fam.Members) {
		return fmt.Errorf("smp: no member %d", dst)
	}
	if !m.Fam.Topo.Connected(m.ID, dst, len(m.Fam.Members)) {
		return ErrNotNeighbours
	}
	return m.Fam.deliver(m.P, m.Fam.Members[dst], Message{From: m.ID, Tag: tag, Words: words, Payload: payload})
}

// SendRetry is Send with bounded retransmission of transient failures
// (packet loss, parity): up to attempts tries before giving up with the
// last error. A dead peer fails immediately — retrying cannot revive it.
func (m *Member) SendRetry(dst, tag, words int, payload any, attempts int) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		err = m.Send(dst, tag, words, payload)
		if err == nil {
			return nil
		}
		var re *fault.RefError
		if !errors.As(err, &re) || re.Kind == fault.NodeDown {
			return err // permanent: dead peer, bad destination
		}
	}
	return err
}

// SendUp transmits to the parent-family member that created this family.
func (m *Member) SendUp(tag, words int, payload any) error {
	if m.Fam.parent == nil {
		return errors.New("smp: family has no parent")
	}
	pf := m.Fam.parent.Fam
	return pf.deliver(m.P, m.Fam.parent, Message{From: ^m.ID, Tag: tag, Words: words, Payload: payload})
}

// SendDown lets a member that created a child family message one of its
// members.
func (m *Member) SendDown(child *Family, dst, tag, words int, payload any) error {
	if child.parent != m {
		return errors.New("smp: not the creator of that family")
	}
	return child.deliver(m.P, child.Members[dst], Message{From: ParentID, Tag: tag, Words: words, Payload: payload})
}

// Recv blocks until a message arrives and returns it. Messages from any
// legal source (sibling, parent, child family) arrive on the same inbox in
// delivery order.
func (m *Member) Recv() Message {
	slot := int(m.inbox.Dequeue(m.P))
	msg := m.mailbox[slot]
	m.free = append(m.free, slot)
	if pr := m.Fam.OS.M.Probe(); pr != nil {
		pr.MsgRecv(m.P.LocalNow(), m.P.ID, m.node, msg.Words, "smp")
	}
	return msg
}

// RecvTimeout is Recv bounded by d nanoseconds of virtual time: ok is false
// if no message arrived before the deadline. It is how a family survives a
// lost peer — a member waiting on a sender whose node died resumes instead
// of blocking forever.
func (m *Member) RecvTimeout(d int64) (msg Message, ok bool) {
	v, ok := m.inbox.DequeueTimeout(m.P, d)
	if !ok {
		return Message{}, false
	}
	slot := int(v)
	msg = m.mailbox[slot]
	m.free = append(m.free, slot)
	if pr := m.Fam.OS.M.Probe(); pr != nil {
		pr.MsgRecv(m.P.LocalNow(), m.P.ID, m.node, msg.Words, "smp")
	}
	return msg, true
}

// TryRecv returns the next message without blocking; ok is false if none is
// pending.
func (m *Member) TryRecv() (msg Message, ok bool) {
	d, ok := m.inbox.TryDequeue(m.P)
	if !ok {
		return Message{}, false
	}
	slot := int(d)
	msg = m.mailbox[slot]
	m.free = append(m.free, slot)
	if pr := m.Fam.OS.M.Probe(); pr != nil {
		pr.MsgRecv(m.P.LocalNow(), m.P.ID, m.node, msg.Words, "smp")
	}
	return msg, true
}

// bufferKey identifies a mapped message buffer (one per destination).
type bufferKey struct {
	family *Family
	member int
}

// sarCache is the LRU cache of mapped buffers.
type sarCache struct {
	cap   int
	order []bufferKey // LRU at the front
}

func newSARCache(capacity int) *sarCache {
	return &sarCache{cap: capacity}
}

// touch reports a hit and refreshes recency.
func (c *sarCache) touch(k bufferKey) bool {
	for i, e := range c.order {
		if e == k {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = k
			return true
		}
	}
	return false
}

// insert adds k, reporting whether an eviction (delayed unmap) occurred.
func (c *sarCache) insert(k bufferKey) (evicted bool) {
	if len(c.order) >= c.cap {
		copy(c.order, c.order[1:])
		c.order[len(c.order)-1] = k
		return true
	}
	c.order = append(c.order, k)
	return false
}
