// Package smp implements the Structured Message Passing package (§3.2): the
// dynamic construction of process families — hierarchical collections of
// heavyweight processes that communicate through asynchronous messages over
// static topologies. A process can talk to its parent, its children, and the
// subset of its siblings its family topology names. SMP generalizes the NET
// package's regular meshes (lines, rings, tori) to arbitrary static
// topologies.
//
// Messages travel through shared-memory buffers on the receiver's node,
// announced through a microcoded dual queue. Because a process with many
// communication channels would exhaust its SARs, buffers are mapped in and
// out dynamically at ~1 ms per operation; the optional SAR cache delays
// unmaps as long as possible in hopes of avoiding a subsequent map (§3.2).
package smp

import (
	"fmt"
)

// Topology defines which sibling pairs of an n-member family may exchange
// messages.
type Topology interface {
	// Validate reports whether the topology is well formed for n members.
	Validate(n int) error
	// Connected reports whether members a and b are neighbours.
	Connected(a, b, n int) bool
	// Name identifies the topology in diagnostics.
	Name() string
}

// Ring connects each member to its two cyclic neighbours.
type Ring struct{}

// Validate implements Topology.
func (Ring) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("smp: ring needs >= 2 members, got %d", n)
	}
	return nil
}

// Connected implements Topology.
func (Ring) Connected(a, b, n int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d == 1 || d == n-1
}

// Name implements Topology.
func (Ring) Name() string { return "ring" }

// Line connects each member to its predecessor and successor.
type Line struct{}

// Validate implements Topology.
func (Line) Validate(n int) error {
	if n < 2 {
		return fmt.Errorf("smp: line needs >= 2 members, got %d", n)
	}
	return nil
}

// Connected implements Topology.
func (Line) Connected(a, b, n int) bool {
	d := a - b
	return d == 1 || d == -1
}

// Name implements Topology.
func (Line) Name() string { return "line" }

// Mesh is a W x H rectangular mesh (NET's speciality).
type Mesh struct{ W, H int }

// Validate implements Topology.
func (m Mesh) Validate(n int) error {
	if m.W <= 0 || m.H <= 0 || m.W*m.H != n {
		return fmt.Errorf("smp: %dx%d mesh does not cover %d members", m.W, m.H, n)
	}
	return nil
}

// Connected implements Topology.
func (m Mesh) Connected(a, b, n int) bool {
	ax, ay := a%m.W, a/m.W
	bx, by := b%m.W, b/m.W
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1
}

// Name implements Topology.
func (m Mesh) Name() string { return fmt.Sprintf("%dx%d mesh", m.W, m.H) }

// Torus is a W x H mesh with wraparound edges (NET's cylinders and tori).
type Torus struct{ W, H int }

// Validate implements Topology.
func (t Torus) Validate(n int) error {
	if t.W < 2 || t.H < 1 || t.W*t.H != n {
		return fmt.Errorf("smp: %dx%d torus does not cover %d members", t.W, t.H, n)
	}
	return nil
}

// Connected implements Topology.
func (t Torus) Connected(a, b, n int) bool {
	ax, ay := a%t.W, a/t.W
	bx, by := b%t.W, b/t.W
	sameRow := ay == by && (abs(ax-bx) == 1 || abs(ax-bx) == t.W-1)
	sameCol := ax == bx && (abs(ay-by) == 1 || abs(ay-by) == t.H-1)
	return sameRow || sameCol
}

// Name implements Topology.
func (t Torus) Name() string { return fmt.Sprintf("%dx%d torus", t.W, t.H) }

// Tree connects member i to its children Fanout*i+1 .. Fanout*i+Fanout.
type Tree struct{ Fanout int }

// Validate implements Topology.
func (t Tree) Validate(n int) error {
	if t.Fanout < 1 {
		return fmt.Errorf("smp: tree fanout %d invalid", t.Fanout)
	}
	if n < 1 {
		return fmt.Errorf("smp: tree needs >= 1 member")
	}
	return nil
}

// Connected implements Topology.
func (t Tree) Connected(a, b, n int) bool {
	if a > b {
		a, b = b, a
	}
	return b >= t.Fanout*a+1 && b <= t.Fanout*a+t.Fanout
}

// Name implements Topology.
func (t Tree) Name() string { return fmt.Sprintf("%d-ary tree", t.Fanout) }

// Full connects every pair of members.
type Full struct{}

// Validate implements Topology.
func (Full) Validate(n int) error { return nil }

// Connected implements Topology.
func (Full) Connected(a, b, n int) bool { return a != b }

// Name implements Topology.
func (Full) Name() string { return "fully connected" }

// Custom uses an explicit adjacency list.
type Custom struct{ Adj [][]int }

// Validate implements Topology.
func (c Custom) Validate(n int) error {
	if len(c.Adj) != n {
		return fmt.Errorf("smp: adjacency for %d members, family has %d", len(c.Adj), n)
	}
	for i, ns := range c.Adj {
		for _, j := range ns {
			if j < 0 || j >= n || j == i {
				return fmt.Errorf("smp: bad neighbour %d of member %d", j, i)
			}
		}
	}
	return nil
}

// Connected implements Topology.
func (c Custom) Connected(a, b, n int) bool {
	for _, j := range c.Adj[a] {
		if j == b {
			return true
		}
	}
	return false
}

// Name implements Topology.
func (Custom) Name() string { return "custom" }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
