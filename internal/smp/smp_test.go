package smp

import (
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

func newOS(t *testing.T, nodes int) *chrysalis.OS {
	t.Helper()
	return chrysalis.New(machine.New(machine.DefaultConfig(nodes)))
}

func seqNodes(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestTopologies(t *testing.T) {
	cases := []struct {
		topo    Topology
		n       int
		yes, no [][2]int
	}{
		{Ring{}, 5, [][2]int{{0, 1}, {4, 0}, {2, 3}}, [][2]int{{0, 2}, {1, 3}}},
		{Line{}, 5, [][2]int{{0, 1}, {3, 4}}, [][2]int{{0, 4}, {0, 2}}},
		{Mesh{W: 3, H: 2}, 6, [][2]int{{0, 1}, {0, 3}, {4, 5}}, [][2]int{{0, 4}, {2, 3}, {0, 5}}},
		{Torus{W: 3, H: 3}, 9, [][2]int{{0, 2}, {0, 6}, {4, 5}}, [][2]int{{0, 4}, {0, 8}}},
		{Tree{Fanout: 2}, 7, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 6}}, [][2]int{{1, 2}, {0, 3}, {3, 4}}},
		{Full{}, 4, [][2]int{{0, 3}, {1, 2}}, [][2]int{{2, 2}}},
		{Custom{Adj: [][]int{{1}, {0, 2}, {1}}}, 3, [][2]int{{0, 1}, {1, 2}}, [][2]int{{0, 2}}},
	}
	for _, c := range cases {
		if err := c.topo.Validate(c.n); err != nil {
			t.Errorf("%s: validate: %v", c.topo.Name(), err)
			continue
		}
		for _, p := range c.yes {
			if !c.topo.Connected(p[0], p[1], c.n) || !c.topo.Connected(p[1], p[0], c.n) {
				t.Errorf("%s: %v should be connected", c.topo.Name(), p)
			}
		}
		for _, p := range c.no {
			if c.topo.Connected(p[0], p[1], c.n) {
				t.Errorf("%s: %v should not be connected", c.topo.Name(), p)
			}
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	if err := (Ring{}).Validate(1); err == nil {
		t.Error("1-ring accepted")
	}
	if err := (Mesh{W: 2, H: 2}).Validate(5); err == nil {
		t.Error("mismatched mesh accepted")
	}
	if err := (Custom{Adj: [][]int{{5}}}).Validate(1); err == nil {
		t.Error("bad adjacency accepted")
	}
	if err := (Tree{Fanout: 0}).Validate(3); err == nil {
		t.Error("zero fanout accepted")
	}
	if err := (Torus{W: 1, H: 4}).Validate(4); err == nil {
		t.Error("degenerate torus accepted")
	}
}

func TestRingMessagePassing(t *testing.T) {
	os := newOS(t, 4)
	const n = 4
	var sum int
	_, err := NewFamily(os, nil, "ring", seqNodes(n), Ring{}, DefaultConfig(), func(m *Member) {
		if m.ID == 0 {
			// Send a token around the ring, accumulating member IDs.
			if err := m.Send(1, 0, 1, 0); err != nil {
				t.Errorf("send: %v", err)
			}
			msg := m.Recv()
			sum = msg.Payload.(int)
		} else {
			msg := m.Recv()
			acc := msg.Payload.(int) + m.ID
			if err := m.Send((m.ID+1)%n, 0, 1, acc); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum != 1+2+3 {
		t.Errorf("ring sum = %d, want 6", sum)
	}
}

func TestTopologyEnforced(t *testing.T) {
	os := newOS(t, 4)
	var sendErr error
	_, err := NewFamily(os, nil, "line", seqNodes(4), Line{}, DefaultConfig(), func(m *Member) {
		if m.ID == 0 {
			sendErr = m.Send(2, 0, 1, nil) // not a neighbour on a line
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sendErr != ErrNotNeighbours {
		t.Errorf("err = %v, want ErrNotNeighbours", sendErr)
	}
}

func TestSendToBogusMember(t *testing.T) {
	os := newOS(t, 2)
	var sendErr error
	_, err := NewFamily(os, nil, "pair", seqNodes(2), Full{}, DefaultConfig(), func(m *Member) {
		if m.ID == 0 {
			sendErr = m.Send(7, 0, 1, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil {
		t.Error("send to member 7 of a 2-family succeeded")
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	os := newOS(t, 2)
	var got []int
	_, err := NewFamily(os, nil, "pair", seqNodes(2), Full{}, DefaultConfig(), func(m *Member) {
		if m.ID == 0 {
			for i := 0; i < 10; i++ {
				if err := m.Send(1, i, 4, i); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		} else {
			for i := 0; i < 10; i++ {
				msg := m.Recv()
				got = append(got, msg.Payload.(int))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("messages reordered: %v", got)
		}
	}
}

func TestTryRecv(t *testing.T) {
	os := newOS(t, 2)
	_, err := NewFamily(os, nil, "pair", seqNodes(2), Full{}, DefaultConfig(), func(m *Member) {
		if m.ID == 1 {
			if _, ok := m.TryRecv(); ok {
				t.Error("TryRecv found phantom message")
			}
			m.P.Advance(20 * sim.Millisecond)
			if msg, ok := m.TryRecv(); !ok || msg.Tag != 5 {
				t.Errorf("TryRecv = %+v, %v", msg, ok)
			}
		} else {
			if err := m.Send(1, 5, 1, nil); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParentChildMessaging(t *testing.T) {
	os := newOS(t, 6)
	var fromChild, fromParent int
	_, err := NewFamily(os, nil, "top", seqNodes(2), Full{}, DefaultConfig(), func(m *Member) {
		if m.ID != 0 {
			return
		}
		child, err := NewFamily(os, m, "sub", []int{2, 3}, Full{}, DefaultConfig(), func(c *Member) {
			if c.ID == 0 {
				msg := c.Recv() // from parent
				fromParent = msg.Payload.(int)
				if msg.From != ParentID {
					t.Errorf("From = %d, want ParentID", msg.From)
				}
				if err := c.SendUp(0, 1, 99); err != nil {
					t.Errorf("SendUp: %v", err)
				}
			}
		})
		if err != nil {
			t.Errorf("child family: %v", err)
			return
		}
		if err := m.SendDown(child, 0, 0, 1, 55); err != nil {
			t.Errorf("SendDown: %v", err)
		}
		msg := m.Recv()
		fromChild = msg.Payload.(int)
		if msg.From != ^0 {
			t.Errorf("From = %d, want ^0", msg.From)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fromParent != 55 || fromChild != 99 {
		t.Errorf("payloads = %d, %d", fromParent, fromChild)
	}
}

func TestSendUpWithoutParent(t *testing.T) {
	os := newOS(t, 2)
	var upErr error
	_, err := NewFamily(os, nil, "orphan", seqNodes(2), Full{}, DefaultConfig(), func(m *Member) {
		if m.ID == 0 {
			upErr = m.SendUp(0, 1, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if upErr == nil {
		t.Error("SendUp from root family succeeded")
	}
}

func TestSARCacheReducesMapOps(t *testing.T) {
	// E15: with the cache, repeated sends to the same peer avoid the ~1 ms
	// map/unmap per message.
	run := func(useCache bool) (Stats, int64) {
		os := newOS(t, 2)
		cfg := DefaultConfig()
		cfg.UseSARCache = useCache
		var fam *Family
		fam, err := NewFamily(os, nil, "pair", seqNodes(2), Full{}, cfg, func(m *Member) {
			if m.ID == 0 {
				for i := 0; i < 50; i++ {
					if err := m.Send(1, 0, 16, nil); err != nil {
						t.Errorf("send: %v", err)
					}
				}
			} else {
				for i := 0; i < 50; i++ {
					m.Recv()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.M.E.Run(); err != nil {
			t.Fatal(err)
		}
		return fam.Stats(), os.M.E.Now()
	}
	withCache, tCache := run(true)
	without, tNo := run(false)
	if withCache.SARCacheHits < 45 {
		t.Errorf("cache hits = %d, want ~49", withCache.SARCacheHits)
	}
	if withCache.SARMapOps >= without.SARMapOps {
		t.Errorf("map ops with cache (%d) not fewer than without (%d)", withCache.SARMapOps, without.SARMapOps)
	}
	if tCache >= tNo {
		t.Errorf("cached run (%d ns) not faster than uncached (%d ns)", tCache, tNo)
	}
}

func TestSARCacheEviction(t *testing.T) {
	c := newSARCache(2)
	k1, k2, k3 := bufferKey{member: 1}, bufferKey{member: 2}, bufferKey{member: 3}
	if c.touch(k1) {
		t.Error("hit on empty cache")
	}
	if c.insert(k1) || c.insert(k2) {
		t.Error("eviction before capacity")
	}
	if !c.touch(k1) {
		t.Error("miss on cached key")
	}
	// k2 is now LRU; inserting k3 evicts it.
	if !c.insert(k3) {
		t.Error("no eviction at capacity")
	}
	if c.touch(k2) {
		t.Error("evicted key still cached")
	}
	if !c.touch(k1) || !c.touch(k3) {
		t.Error("expected keys missing")
	}
}

func TestMessageCostsAreMilliseconds(t *testing.T) {
	// §3.2/§4.1: SMP communication is significantly more expensive than
	// direct shared-memory access — order a millisecond per message with
	// buffer management.
	os := newOS(t, 2)
	var perMsg int64
	_, err := NewFamily(os, nil, "pair", seqNodes(2), Full{}, Config{UseSARCache: false}, func(m *Member) {
		if m.ID == 0 {
			start := m.P.Engine().Now()
			for i := 0; i < 10; i++ {
				if err := m.Send(1, 0, 64, nil); err != nil {
					t.Errorf("send: %v", err)
				}
			}
			perMsg = (m.P.Engine().Now() - start) / 10
		} else {
			for i := 0; i < 10; i++ {
				m.Recv()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if perMsg < 1*sim.Millisecond || perMsg > 10*sim.Millisecond {
		t.Errorf("per-message cost = %d ns, want 1-10 ms", perMsg)
	}
}

func TestFamilyCreationChargesCreator(t *testing.T) {
	os := newOS(t, 6)
	var elapsed int64
	_, err := NewFamily(os, nil, "top", seqNodes(2), Full{}, DefaultConfig(), func(m *Member) {
		if m.ID != 0 {
			return
		}
		start := m.P.Engine().Now()
		_, err := NewFamily(os, m, "sub", []int{2, 3, 4, 5}, Ring{}, DefaultConfig(), func(c *Member) {})
		if err != nil {
			t.Errorf("sub family: %v", err)
		}
		elapsed = m.P.Engine().Now() - start
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	costs := os.Costs
	minimum := 4 * (costs.ProcCreateLocal + costs.ProcCreateSerial)
	if elapsed < minimum {
		t.Errorf("creating 4 members cost %d ns, want >= %d (serial creation)", elapsed, minimum)
	}
}
