package core

import (
	"fmt"
	"io"

	"butterfly/internal/apps/knight"
	"butterfly/internal/apps/queens"
	"butterfly/internal/apps/search"
	"butterfly/internal/biff"
	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/psyche"
	"butterfly/internal/replay"
	"butterfly/internal/rpcbench"
	"butterfly/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "vision",
		Title: "BIFF: parallel image pipeline vs the workstation",
		Paper: "download an image into the Butterfly, apply a complex sequence of operations, and upload the result in a tiny fraction of the time required to perform the same operations locally",
		Run:   runVision,
	})
	register(Experiment{
		ID:    "rpc",
		Title: "Implementations of remote procedure call (after Low, BPR 16)",
		Paper: "experiments with eight different implementations of remote procedure call explored the ramifications of these benchmarks for interprocess communication",
		Run:   runRPC,
	})
	register(Experiment{
		ID:    "psyche",
		Title: "Psyche: the protection/performance tradeoff",
		Paper: "in the absence of protection boundaries, access to a shared realm can be as efficient as a procedure call or a pointer dereference",
		Run:   runPsyche,
	})
	register(Experiment{
		ID:    "search",
		Title: "Parallel alpha-beta search (the checkers program's engine)",
		Paper: "a large checkers-playing program (written in Lynx) that uses a parallel version of alpha-beta search",
		Run:   runSearch,
	})
	register(Experiment{
		ID:    "pedagogy",
		Title: "Class projects: 8-queens and the non-deterministic knight's tour",
		Paper: "several pedagogical applications have been constructed by students ... graph transitive closure, 8-queens ... a non-deterministic version of the knight's tour problem",
		Run:   runPedagogy,
	})
}

// runVision times a BIFF pipeline across processor counts.
func runVision(w io.Writer, quick bool) error {
	size := 256
	procCounts := []int{1, 16, 64}
	if quick {
		size = 96
		procCounts = []int{1, 8}
	}
	img := biff.TestImage(size, size, 7)
	pipeline := []biff.Filter{biff.Smooth(), biff.SobelMag{}, biff.Threshold{T: 60}}
	want := biff.PipelineSequential(img, pipeline...)
	fmt.Fprintf(w, "pipeline: smooth -> sobel -> threshold on a %dx%d image\n\n", size, size)
	fmt.Fprintf(w, "%8s %14s %10s\n", "procs", "seconds", "speedup")
	var t1 int64
	for _, p := range procCounts {
		r, err := biff.Run(img, p, pipeline...)
		if err != nil {
			return err
		}
		if err := biff.Equal(want, r.Out); err != nil {
			return fmt.Errorf("vision: wrong answer: %v", err)
		}
		if p == procCounts[0] {
			t1 = r.ElapsedNs
		}
		fmt.Fprintf(w, "%8d %14.3f %9.1fx\n", p, sim.Seconds(r.ElapsedNs), float64(t1)/float64(r.ElapsedNs))
	}
	ws := biff.WorkstationNs(img, pipeline...)
	fmt.Fprintf(w, "\nworkstation (sequential, faster scalar CPU): %.3f s\n", sim.Seconds(ws))
	return nil
}

// runRPC prints the RPC implementation comparison.
func runRPC(w io.Writer, quick bool) error {
	calls := 100
	if quick {
		calls = 25
	}
	fmt.Fprintf(w, "%-20s %18s\n", "implementation", "round trip (us)")
	for _, impl := range rpcbench.All() {
		r, err := rpcbench.Run(impl, calls)
		if err != nil {
			return err
		}
		if err := rpcbench.Verify(r); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %18.1f\n", string(impl), sim.Micros(r.RoundTripNs))
	}
	fmt.Fprintf(w, "\npaper: the primitive choice dictates the cost; all are 'comparable' to raw Chrysalis\n")
	return nil
}

// runPsyche measures optimized vs protected realm invocation.
func runPsyche(w io.Writer, quick bool) error {
	iters := 50
	if quick {
		iters = 15
	}
	m := machine.New(ButterflyPlus(4))
	os := chrysalis.New(m)
	k := psyche.New(os)
	key := k.NewKey()
	var optNs, protNs, faultNs int64
	if _, err := os.MakeProcess(nil, "domain", 0, 16, func(self *chrysalis.Process) {
		d := k.NewDomain(self, key)
		fast := k.NewRealm("fast", 0, psyche.Optimized, key)
		fast.Bind("op", func(p *sim.Proc, args any) any { return nil })
		safe := k.NewRealm("safe", 0, psyche.Protected, key)
		safe.Bind("op", func(p *sim.Proc, args any) any { return nil })

		e := m.E
		t0 := e.Now()
		if _, err := d.Invoke(fast, "op", nil); err != nil {
			panic(err)
		}
		faultNs = e.Now() - t0 // includes the lazy privilege evaluation
		if _, err := d.Invoke(safe, "op", nil); err != nil {
			panic(err)
		}

		t0 = e.Now()
		for i := 0; i < iters; i++ {
			d.Invoke(fast, "op", nil)
		}
		optNs = (e.Now() - t0) / int64(iters)

		t0 = e.Now()
		for i := 0; i < iters; i++ {
			d.Invoke(safe, "op", nil)
		}
		protNs = (e.Now() - t0) / int64(iters)
	}); err != nil {
		return err
	}
	if err := m.E.Run(); err != nil {
		return err
	}
	fmt.Fprintf(w, "first contact (lazy privilege evaluation): %8.1f us\n", sim.Micros(faultNs))
	fmt.Fprintf(w, "optimized realm invocation:                %8.1f us  (procedure-call territory)\n", sim.Micros(optNs))
	fmt.Fprintf(w, "protected realm invocation:                %8.1f us  (kernel trap each time)\n", sim.Micros(protNs))
	fmt.Fprintf(w, "protection premium:                        %8.1fx\n", float64(protNs)/float64(optNs))
	fmt.Fprintf(w, "\n(the paper's Psyche was under construction; this reproduces its design tradeoff)\n")
	return nil
}

// runSearch sweeps worker counts for parallel alpha-beta.
func runSearch(w io.Writer, quick bool) error {
	tr := search.Tree{Branch: 12, Depth: 6, Seed: 11}
	workerCounts := []int{1, 4, 12}
	if quick {
		tr = search.Tree{Branch: 8, Depth: 5, Seed: 11}
		workerCounts = []int{1, 4}
	}
	want, seq := tr.Sequential()
	fmt.Fprintf(w, "synthetic game tree: branch %d, depth %d; sequential alpha-beta visits %d nodes\n\n",
		tr.Branch, tr.Depth, seq.Nodes)
	fmt.Fprintf(w, "%8s %12s %10s %16s %16s\n", "workers", "seconds", "speedup", "nodes visited", "search overhead")
	var t1 int64
	for _, wk := range workerCounts {
		r, err := tr.Parallel(wk)
		if err != nil {
			return err
		}
		if r.Value != want {
			return fmt.Errorf("search: value %d, want %d", r.Value, want)
		}
		if wk == workerCounts[0] {
			t1 = r.ElapsedNs
		}
		fmt.Fprintf(w, "%8d %12.3f %9.1fx %16d %15.1f%%\n", wk,
			sim.Seconds(r.ElapsedNs), float64(t1)/float64(r.ElapsedNs),
			r.Nodes, 100*r.Overhead())
	}
	fmt.Fprintf(w, "\nroot splitting forgoes sibling window tightenings: the overhead above is that price\n")
	return nil
}

// runPedagogy runs the class projects.
func runPedagogy(w io.Writer, quick bool) error {
	nq := 10
	board := 6
	if quick {
		nq = 8
		board = 5
	}
	// 8-queens (and bigger).
	r, err := queens.CountParallel(nq, 8)
	if err != nil {
		return err
	}
	if want := queens.CountSequential(nq); r.Solutions != want {
		return fmt.Errorf("queens: %d, want %d", r.Solutions, want)
	}
	fmt.Fprintf(w, "%d-queens: %d solutions via %d US tasks on 8 processors in %.3f s\n",
		nq, r.Solutions, r.Tasks, sim.Seconds(r.ElapsedNs))

	// Knight's tour with Instant Replay.
	rec, err := knight.Run(knight.Config{N: board, Procs: 4, Start: 0, MaxPool: 64, Mode: replay.ModeRecord})
	if err != nil {
		return err
	}
	rep, err := knight.Run(knight.Config{N: board, Procs: 4, Start: 0, MaxPool: 64,
		Mode: replay.ModeReplay, Log: rec.Log,
		Jitter: []int64{1 * sim.Millisecond, 0, 300 * sim.Microsecond, 50 * sim.Microsecond}})
	if err != nil {
		return err
	}
	same := len(rep.Tour.Path) == len(rec.Tour.Path)
	if same {
		for i := range rec.Tour.Path {
			if rep.Tour.Path[i] != rec.Tour.Path[i] {
				same = false
				break
			}
		}
	}
	fmt.Fprintf(w, "knight's tour on %dx%d: found in %d pool operations; ", board, board, rec.Grabs)
	if same {
		fmt.Fprintf(w, "Instant Replay reproduced the identical tour under different timing\n")
	} else {
		return fmt.Errorf("pedagogy: replayed tour diverged")
	}
	return nil
}
