package core

import (
	"fmt"
	"io"

	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

// This file holds the partition-safe kernels: restatements of the paper's
// Gaussian-elimination (Figure 5) and hot-spot workloads written to the
// partitioned engine's programming model — every process spawned before
// Run, no Go state shared across nodes, no cross-node wakes, loops bounded
// by virtual time rather than shared stop flags. Their machines opt in with
// Config.Partitions = 1 (the windowed sequential reference), so
// `butterflybench -partitions N` and Spec.Partitions can raise the
// partition count; the tables they print are bit-identical at every count.

func init() {
	register(Experiment{
		ID:            "pgauss",
		Title:         "Partitioned Gaussian elimination row sweep",
		Paper:         "SMP outperformed the Uniform System below 64 processors (Figure 5 workload, restated for the partitioned engine)",
		Run:           runPGauss,
		Partitionable: true,
	})
	register(Experiment{
		ID:            "phot",
		Title:         "Partitioned hot-spot polling against one memory",
		Paper:         "over a hundred processors can issue simultaneous remote references, leading to performance degradation far beyond the nominal factor of five (hot-spot workload, restated for the partitioned engine)",
		Run:           runPHot,
		Partitionable: true,
	})
}

// runPGauss distributes matrix rows one-per-node and eliminates with a
// pivot broadcast each step, run as two deadline-separated phases the way
// the real barrier-synchronized algorithm is: the pivot owner normalizes
// its row while every other node block-copies it into local memory (the
// paper's caching idiom — copies first, then compute on local data), and
// all nodes then run the flop-heavy elimination update against purely
// local copies. The copy phase's deadline absorbs the broadcast's
// serialization at the pivot module, so every node starts eliminating
// together — dense windows with one heavy local sweep per node, the shape
// the partitioned engine overlaps best.
func runPGauss(w io.Writer, quick bool) error {
	nodes, width, iters := 64, 192, 96
	if quick {
		nodes, width, iters = 16, 48, 10
	}
	cfg := ButterflyI(nodes)
	cfg.Partitions = 1
	cfg.NoSwitchContention = true // switch contention negligible (paper §switch); skip per-word port booking
	m := machine.New(cfg)
	// Phase deadlines stand in for the algorithm's barriers (the
	// partitioned model has no cross-node wakes): each is sized for its
	// phase's worst case. The copy phase is dominated by nodes-1 copies of
	// width words serializing at the pivot module, overlapped with the
	// pivot's normalize divides; the eliminate phase is pure local flops.
	copyPhase := int64(nodes-1)*int64(width)*cfg.MemCycleNs +
		cfg.FlopNs*int64(width) + 400_000
	stride := copyPhase + 2*cfg.FlopNs*int64(width) + 400_000
	waitUntil := func(p *sim.Proc, target int64) {
		if p.LocalNow() < target {
			p.Advance(target - p.LocalNow())
		}
	}
	for n := 0; n < nodes; n++ {
		node := n
		m.Spawn(fmt.Sprintf("row%d", node), node, func(p *sim.Proc) {
			for it := 0; it < iters; it++ {
				waitUntil(p, int64(it)*stride)
				if pivot := it % nodes; pivot == node {
					// Normalize the pivot row in place: one divide per
					// element against local memory.
					m.Sweep(p, width, cfg.FlopNs, []machine.Ref{{Node: node, Words: 1}})
				} else {
					// Fetch the pivot row into the local copy buffer.
					m.BlockCopy(p, pivot, node, width)
				}
				waitUntil(p, int64(it)*stride+copyPhase)
				// Eliminate against the local pivot copy: multiply-subtract
				// per element, touching the row and the copy.
				m.Sweep(p, width, 2*cfg.FlopNs, []machine.Ref{{Node: node, Words: 2}})
			}
		})
	}
	if err := m.E.Run(); err != nil {
		return err
	}
	st := m.Stats()
	fmt.Fprintf(w, "%10s %10s %10s %12s %12s %14s\n",
		"nodes", "width", "iters", "copies", "local refs", "virtual time")
	fmt.Fprintf(w, "%10d %10d %10d %12d %12d %12.2fms\n",
		nodes, width, iters, st.BlockCopies, st.LocalRefs, float64(m.E.Now())/1e6)
	fmt.Fprintf(w, "\nremote traffic: one %d-word pivot broadcast per node per iteration;\n", width)
	fmt.Fprintf(w, "elimination flops run against local copies (the caching lesson).\n")
	return nil
}

// runPHot pits one node's local computation against every other node
// busy-polling an atomic variable in its memory. Spinners back off with
// local bookkeeping between polls, so the poll stream arrives at the hot
// module once per lookahead window — and the owner's local reads still
// queue behind it, reproducing the paper's warning in a form the
// partitioned engine can run at any partition count.
func runPHot(w io.Writer, quick bool) error {
	nodes, horizon, structWords := 64, int64(40_000_000), 10
	if quick {
		// Fewer spinners need a bigger protected structure to keep the hot
		// module oversubscribed, so the quick table still shows the effect.
		nodes, horizon, structWords = 16, int64(8_000_000), 40
	}
	cfg := ButterflyI(nodes)
	cfg.Partitions = 1
	cfg.NoSwitchContention = true // the hot spot is the memory module, not the switch
	m := machine.New(cfg)

	const ownerWords = 4
	var ownerWait, ownerSamples int64
	polls := make([]int64, nodes)

	m.Spawn("owner", 0, func(p *sim.Proc) {
		for p.LocalNow() < horizon {
			before := p.LocalNow()
			m.Read(p, 0, ownerWords)
			ownerWait += p.LocalNow() - before
			ownerSamples++
			m.IntOps(p, 400) // think time between samples
		}
	})
	for n := 1; n < nodes; n++ {
		node := n
		m.Spawn(fmt.Sprintf("spin%d", node), node, func(p *sim.Proc) {
			for p.LocalNow() < horizon {
				// Local backoff bookkeeping between polls.
				m.Sweep(p, 32, cfg.IntOpNs, []machine.Ref{{Node: node, Words: 1}})
				m.Atomic(p, node)         // test the cached copy first
				m.Atomic(p, 0)            // poll the hot word
				m.Read(p, 0, structWords) // then re-read the protected structure
				polls[node]++
			}
		})
	}
	if err := m.E.Run(); err != nil {
		return err
	}
	var totalPolls int64
	for _, c := range polls {
		totalPolls += c
	}
	uncontended := cfg.LocalOverheadNs + int64(ownerWords)*cfg.MemCycleNs
	mean := int64(0)
	if ownerSamples > 0 {
		mean = ownerWait / ownerSamples
	}
	fmt.Fprintf(w, "%10s %10s %12s %14s %14s %10s\n",
		"nodes", "spinners", "polls", "owner reads", "mean local", "slowdown")
	fmt.Fprintf(w, "%10d %10d %12d %14d %12dns %9.2fx\n",
		nodes, nodes-1, totalPolls, ownerSamples, mean, float64(mean)/float64(uncontended))
	fmt.Fprintf(w, "\nthe owner's %d-word local reads cost %dns uncontended; %d remote pollers\n",
		ownerWords, uncontended, nodes-1)
	fmt.Fprintf(w, "stealing cycles from its memory stretch them to %dns.\n", mean)
	return nil
}
