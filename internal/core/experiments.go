package core

import (
	"fmt"
	"io"
	"math/rand"

	"butterfly/internal/antfarm"
	"butterfly/internal/apps/connect"
	"butterfly/internal/apps/gauss"
	"butterfly/internal/apps/graphs"
	"butterfly/internal/apps/hough"
	"butterfly/internal/apps/msort"
	"butterfly/internal/bridge"
	"butterfly/internal/chrysalis"
	"butterfly/internal/crowd"
	"butterfly/internal/elmwood"
	"butterfly/internal/lynx"
	"butterfly/internal/machine"
	"butterfly/internal/replay"
	"butterfly/internal/sim"
	"butterfly/internal/smp"
	"butterfly/internal/us"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5: Gaussian elimination, shared memory vs message passing",
		Paper: "SMP outperformed the Uniform System below 64 processors; beyond 64 the US timings remained constant while SMP's increased",
		Run:   runFigure5,
	})
	register(Experiment{
		ID:    "numa",
		Title: "NUMA ratio: local vs remote reference cost",
		Paper: "remote memory references (reads) take about 4 us, roughly five times as long as a local reference",
		Run:   runNUMA,
	})
	register(Experiment{
		ID:    "hough",
		Title: "Hough transform: caching and local trig tables",
		Paper: "copying blocks into local memory improved performance by 42% with 64 processors; local lookup tables improved performance by an additional 22%",
		Run:   runHough,
	})
	register(Experiment{
		ID:    "spread",
		Title: "Data spreading vs memory contention (Gaussian elimination)",
		Paper: "over 30% improvement when data is spread over all 128 memories; greatest effect at 1/4 to 1/2 of the processors",
		Run:   runSpread,
	})
	register(Experiment{
		ID:    "hotspot",
		Title: "Busy-wait hot spots steal memory cycles",
		Paper: "over a hundred processors can issue simultaneous remote references, leading to performance degradation far beyond the nominal factor of five",
		Run:   runHotspot,
	})
	register(Experiment{
		ID:    "switch",
		Title: "Switch contention under random traffic",
		Paper: "the potential for switch contention was anticipated in the design and has been rendered almost negligible",
		Run:   runSwitch,
	})
	register(Experiment{
		ID:    "prims",
		Title: "Chrysalis primitive costs (after Dibble's BPR 18)",
		Paper: "events and dual queues complete in tens of microseconds; map/unmap costs over 1 ms per segment; catch blocks cost about 70 us",
		Run:   runPrims,
	})
	register(Experiment{
		ID:    "crowd",
		Title: "Crowd Control: parallel process creation vs the template bottleneck",
		Paper: "Crowd Control parallelizes process creation, but serial access to process templates ultimately limits large-scale parallelism",
		Run:   runCrowd,
	})
	register(Experiment{
		ID:    "alloc",
		Title: "Serial vs parallel memory allocation in the Uniform System",
		Paper: "serial memory allocation in the Uniform System was a dominant factor in many programs until a parallel allocator was introduced",
		Run:   runAlloc,
	})
	register(Experiment{
		ID:    "replay",
		Title: "Instant Replay monitoring overhead",
		Paper: "the overhead of monitoring can be kept to within a few percent of execution time for typical programs",
		Run:   runReplayOverhead,
	})
	register(Experiment{
		ID:    "bridge",
		Title: "Bridge parallel file system tool speedups",
		Paper: "Bridge will provide linear speedup on several dozen disks for copying, sorting, searching, and comparing",
		Run:   runBridge,
	})
	register(Experiment{
		ID:    "connect",
		Title: "Connectionist simulator: Butterfly vs thrashing VAX, and scaling",
		Paper: "networks that led to hopeless thrashing on a VAX ... simulate in minutes networks that had previously taken hours",
		Run:   runConnect,
	})
	register(Experiment{
		ID:    "speedups",
		Title: "Graph application speedups (DARPA benchmarks, class projects)",
		Paper: "significant speedups (often almost linear) using over 100 processors on ... numerous computer vision and graph algorithms",
		Run:   runSpeedups,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6: Moviola view of a deadlocked odd-even merge sort",
		Paper: "Figure 6, produced by the toolkit, is a graphical view of deadlock in an odd-even merge sort program",
		Run:   runFigure6,
	})
	register(Experiment{
		ID:    "sarcache",
		Title: "SMP SAR cache: delaying unmaps to avoid maps",
		Paper: "to soften the roughly 1 ms overhead of map operations, SMP incorporates an optional SAR cache that delays unmap operations as long as possible",
		Run:   runSARCache,
	})
	register(Experiment{
		ID:    "models",
		Title: "Communication cost across programming models",
		Paper: "a comparison with the costs of the basic primitives provided by Chrysalis shows that any general scheme for communication on the Butterfly will have comparable costs",
		Run:   runModels,
	})
}

// runFigure5 sweeps processor counts for both Gaussian elimination
// implementations.
func runFigure5(w io.Writer, quick bool) error {
	n := 512
	procs := []int{8, 16, 32, 48, 64, 96, 128}
	if quick {
		n = 96
		procs = []int{4, 8, 16}
	}
	fmt.Fprintf(w, "%6s %18s %18s %14s %16s\n", "procs", "shared-memory (s)", "msg-passing (s)", "SMP msgs", "US comm ops")
	for _, p := range procs {
		usRes, err := gauss.RunUS(gauss.USConfig{N: n, Procs: p, Seed: 1, SpreadK: 128})
		if err != nil {
			return err
		}
		mpRes, err := gauss.RunSMP(gauss.SMPConfig{N: n, Procs: p, Seed: 1})
		if err != nil {
			return err
		}
		if usRes.MaxResidue > 1e-9 || mpRes.MaxResidue > 1e-9 {
			return fmt.Errorf("fig5: wrong answer (residues %g, %g)", usRes.MaxResidue, mpRes.MaxResidue)
		}
		fmt.Fprintf(w, "%6d %18.2f %18.2f %14d %16d\n",
			p, sim.Seconds(usRes.ElapsedNs), sim.Seconds(mpRes.ElapsedNs),
			mpRes.Messages, usRes.CommOps)
	}
	fmt.Fprintf(w, "\nformulae: SMP messages = P*N = %d at P=%d; US comm ops = (N^2-N)+P(N-1) = %d\n",
		gauss.ExpectedMessagesSMP(procs[len(procs)-1], n), procs[len(procs)-1],
		gauss.ExpectedCommOpsUS(procs[len(procs)-1], n))
	return nil
}

// runNUMA measures the basic reference costs.
func runNUMA(w io.Writer, quick bool) error {
	nodes := 128
	if quick {
		nodes = 16
	}
	m := machine.New(ButterflyI(nodes))
	var local, remote, block int64
	m.Spawn("probe", 0, func(p *sim.Proc) {
		t0 := m.E.Now()
		m.Read(p, 0, 1)
		p.Sync() // flush the lazy reference charge before reading the clock
		local = m.E.Now() - t0
		t0 = m.E.Now()
		m.Read(p, nodes-1, 1)
		p.Sync()
		remote = m.E.Now() - t0
		t0 = m.E.Now()
		m.BlockCopy(p, nodes-1, 0, 256)
		p.Sync()
		block = (m.E.Now() - t0) / 256
	})
	if err := m.E.Run(); err != nil {
		return err
	}
	fmt.Fprintf(w, "local read:         %6.2f us\n", sim.Micros(local))
	fmt.Fprintf(w, "remote read:        %6.2f us   (paper: ~4 us)\n", sim.Micros(remote))
	fmt.Fprintf(w, "remote/local ratio: %6.2f      (paper: roughly 5)\n", float64(remote)/float64(local))
	fmt.Fprintf(w, "block copy/word:    %6.2f us   (the caching idiom's advantage)\n", sim.Micros(block))
	return nil
}

// runHough compares the three implementation styles.
func runHough(w io.Writer, quick bool) error {
	size, angles, procs := 256, 180, 64
	if quick {
		size, angles, procs = 96, 60, 8
	}
	im := hough.SyntheticImage(size, size, 6, 0.15, 42)
	ref := hough.Reference(im, angles)
	var base int64
	fmt.Fprintf(w, "%-28s %12s %14s\n", "variant", "seconds", "vs no caching")
	for _, v := range []hough.Variant{hough.VariantShared, hough.VariantCached, hough.VariantLocalTables} {
		r, err := hough.Run(hough.Config{Image: im, Angles: angles, Procs: procs, Variant: v})
		if err != nil {
			return err
		}
		if err := hough.Equal(ref, r.Votes); err != nil {
			return fmt.Errorf("hough: wrong answer: %v", err)
		}
		if v == hough.VariantShared {
			base = r.ElapsedNs
		}
		fmt.Fprintf(w, "%-28s %12.3f %13.1f%%\n", v.String(), sim.Seconds(r.ElapsedNs),
			hough.Speedup(base, r.ElapsedNs))
	}
	fmt.Fprintf(w, "\npaper: caching +42%%, local tables +22%% more (at 64 processors)\n")
	return nil
}

// runSpread varies how many memories hold the matrix.
func runSpread(w io.Writer, quick bool) error {
	n, procs := 256, 32
	spreads := []int{1, 4, 16, 64, 128}
	if quick {
		n, procs = 96, 8
		spreads = []int{1, 4, 16}
	}
	fmt.Fprintf(w, "%10s %12s %12s\n", "memories", "seconds", "vs 1 memory")
	var base int64
	for _, s := range spreads {
		r, err := gauss.RunUS(gauss.USConfig{N: n, Procs: procs, Seed: 1, SpreadK: s})
		if err != nil {
			return err
		}
		if s == spreads[0] {
			base = r.ElapsedNs
		}
		fmt.Fprintf(w, "%10d %12.2f %11.1f%%\n", s, sim.Seconds(r.ElapsedNs),
			100*float64(base-r.ElapsedNs)/float64(base))
	}
	fmt.Fprintf(w, "\npaper: spreading over all 128 memories improved performance by over 30%%\n")
	return nil
}

// runHotspot measures how busy-waiting on one location degrades the owner's
// local references.
func runHotspot(w io.Writer, quick bool) error {
	nodes := 128
	counts := []int{0, 8, 32, 64, 100}
	if quick {
		nodes = 32
		counts = []int{0, 8, 24}
	}
	fmt.Fprintf(w, "%10s %22s %12s\n", "spinners", "owner local read (us)", "slowdown")
	var base int64
	for _, spinners := range counts {
		m := machine.New(ButterflyI(nodes))
		os := chrysalis.New(m)
		lock := os.NewSpinLock(0)
		lock.PollNs = 1 * sim.Microsecond
		stop := false
		for s := 1; s <= spinners; s++ {
			m.Spawn("spinner", s, func(p *sim.Proc) {
				for !stop {
					if lock.TryLock(p) {
						lock.Unlock(p) // immediately release; we only generate traffic
					}
					p.Advance(lock.PollNs)
				}
			})
		}
		var latency int64
		m.Spawn("owner", 0, func(p *sim.Proc) {
			p.Advance(3 * sim.Millisecond)
			const samples = 50
			t0 := m.E.Now()
			for i := 0; i < samples; i++ {
				m.Read(p, 0, 1)
				p.Advance(5 * sim.Microsecond)
			}
			latency = (m.E.Now() - t0 - 50*5*sim.Microsecond) / samples
			stop = true
		})
		if err := m.E.Run(); err != nil {
			return err
		}
		if spinners == 0 {
			base = latency
		}
		fmt.Fprintf(w, "%10d %22.2f %11.1fx\n", spinners, sim.Micros(latency), float64(latency)/float64(base))
	}
	fmt.Fprintf(w, "\npaper: degradation far beyond the nominal factor of five\n")
	return nil
}

// runSwitch loads the network with uniform random traffic.
func runSwitch(w io.Writer, quick bool) error {
	nodes := 128
	gaps := []int64{200_000, 50_000, 20_000, 8_000}
	if quick {
		nodes = 64
		gaps = []int64{100_000, 20_000}
	}
	fmt.Fprintf(w, "%24s %18s %14s\n", "per-node ref every", "avg latency (us)", "added by net")
	for _, gap := range gaps {
		m := machine.New(ButterflyI(nodes))
		rng := rand.New(rand.NewSource(7))
		var total int64
		var count int64
		for i := 0; i < nodes; i++ {
			i := i
			dests := make([]int, 200)
			for j := range dests {
				for {
					dests[j] = rng.Intn(nodes)
					if dests[j] != i {
						break
					}
				}
			}
			m.Spawn("traffic", i, func(p *sim.Proc) {
				for _, d := range dests {
					t0 := m.E.Now()
					m.Read(p, d, 1)
					p.Sync()
					total += m.E.Now() - t0
					count++
					p.Advance(gap)
				}
			})
		}
		if err := m.E.Run(); err != nil {
			return err
		}
		avg := total / count
		base := m.RemoteReadNs()
		fmt.Fprintf(w, "%22d us %18.2f %13.1f%%\n", gap/1000, sim.Micros(avg),
			100*float64(avg-base)/float64(base))
	}
	fmt.Fprintf(w, "\npaper: switch contention almost negligible (memory contention is the real problem)\n")
	return nil
}

// runPrims times the Chrysalis primitives.
func runPrims(w io.Writer, quick bool) error {
	m := machine.New(ButterflyI(4))
	os := chrysalis.New(m)
	type row struct {
		name string
		ns   int64
	}
	var rows []row
	timeIt := func(name string, p *sim.Proc, fn func()) {
		t0 := m.E.Now()
		fn()
		rows = append(rows, row{name, m.E.Now() - t0})
	}
	_, err := os.MakeProcess(nil, "bench", 0, 32, func(self *chrysalis.Process) {
		ev := os.NewEvent(self)
		timeIt("event post", self.P, func() { ev.Post(self.P, 1) })
		timeIt("event wait (posted)", self.P, func() { ev.Wait(self.P) })
		q := os.NewDualQueue(0, self.Root)
		timeIt("dual queue enqueue", self.P, func() { q.Enqueue(self.P, 1) })
		timeIt("dual queue dequeue", self.P, func() { q.Dequeue(self.P) })
		obj, err := os.MakeObj(self.P, 1, 4096, nil)
		if err != nil {
			panic(err)
		}
		var slot int
		timeIt("map memory object", self.P, func() {
			slot, err = self.MapObj(obj)
			if err != nil {
				panic(err)
			}
		})
		timeIt("unmap memory object", self.P, func() {
			if err := self.UnmapObj(slot); err != nil {
				panic(err)
			}
		})
		timeIt("catch block (no throw)", self.P, func() {
			os.Catch(self.P, func() {})
		})
		timeIt("catch + throw", self.P, func() {
			os.Catch(self.P, func() { os.Throw(self.P, 1, "x") })
		})
		timeIt("make process", self.P, func() {
			if _, err := os.MakeProcess(self.P, "child", 1, 8, func(pr *chrysalis.Process) {}); err != nil {
				panic(err)
			}
		})
	})
	if err != nil {
		return err
	}
	if err := m.E.Run(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-26s %14s\n", "primitive", "cost (us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %14.1f\n", r.name, sim.Micros(r.ns))
	}
	fmt.Fprintf(w, "\npaper: events/dual queues tens of us; map/unmap over 1 ms; catch ~70 us\n")
	return nil
}

// runCrowd compares process-creation strategies.
func runCrowd(w io.Writer, quick bool) error {
	sizes := []int{16, 64, 128}
	if quick {
		sizes = []int{8, 32}
	}
	fmt.Fprintf(w, "%8s %14s %14s %12s %18s\n", "procs", "serial (s)", "tree (s)", "speedup", "template floor (s)")
	for _, n := range sizes {
		serial, err := crowdTime(n, false)
		if err != nil {
			return err
		}
		tree, err := crowdTime(n, true)
		if err != nil {
			return err
		}
		floor := float64(n) * sim.Seconds(chrysalis.DefaultCosts().ProcCreateSerial)
		fmt.Fprintf(w, "%8d %14.3f %14.3f %11.1fx %18.3f\n",
			n, sim.Seconds(serial), sim.Seconds(tree), float64(serial)/float64(tree), floor)
	}
	fmt.Fprintf(w, "\npaper: the tree helps, but the serial template section is an Amdahl floor\n")
	return nil
}

func crowdTime(n int, tree bool) (int64, error) {
	m := machine.New(ButterflyI(n))
	os := chrysalis.New(m)
	var last int64
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	body := func(pr *chrysalis.Process, idx int) {
		if t := m.E.Now(); t > last {
			last = t
		}
	}
	_, err := os.MakeProcess(nil, "boot", 0, 16, func(self *chrysalis.Process) {
		if tree {
			if err := crowd.CreateTree(os, self.P, "crowd", nodes, 4, body); err != nil {
				panic(err)
			}
		} else {
			if err := crowd.CreateSerial(os, self.P, "crowd", nodes, body); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		return 0, err
	}
	if err := m.E.Run(); err != nil {
		return 0, err
	}
	return last, nil
}

// runAlloc compares the serial and parallel first-fit allocators.
func runAlloc(w io.Writer, quick bool) error {
	workers := 32
	allocs := 320
	if quick {
		workers, allocs = 8, 80
	}
	run := func(parallel bool) (int64, error) {
		m := machine.New(ButterflyI(workers))
		os := chrysalis.New(m)
		cfg := us.DefaultConfig(workers)
		cfg.ParallelAlloc = parallel
		var elapsed int64
		_, err := us.Initialize(os, cfg, func(uw *us.Worker) {
			t0 := m.E.Now()
			uw.U.GenOnIndex(uw, allocs, func(tw *us.Worker, i int) {
				if _, err := tw.U.Alloc(tw, tw.ID, 2048); err != nil {
					panic(err)
				}
				tw.U.OS.M.IntOps(tw.P, 200)
			})
			elapsed = m.E.Now() - t0
		})
		if err != nil {
			return 0, err
		}
		if err := m.E.Run(); err != nil {
			return 0, err
		}
		return elapsed, nil
	}
	serial, err := run(false)
	if err != nil {
		return err
	}
	parallel, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serial allocator:   %8.3f s\n", sim.Seconds(serial))
	fmt.Fprintf(w, "parallel allocator: %8.3f s\n", sim.Seconds(parallel))
	fmt.Fprintf(w, "improvement:        %8.1fx\n", float64(serial)/float64(parallel))
	fmt.Fprintf(w, "\npaper: serial allocation dominated many programs until the parallel allocator\n")
	return nil
}

// runReplayOverhead measures record-mode cost on a lock-step workload.
func runReplayOverhead(w io.Writer, quick bool) error {
	procs, iters := 16, 40
	if quick {
		procs, iters = 4, 15
	}
	elapsed := func(mode replay.Mode) (int64, error) {
		m := machine.New(ButterflyI(procs))
		os := chrysalis.New(m)
		mon := replay.NewMonitor(os, mode)
		objs := make([]*replay.Object, procs)
		for i := range objs {
			objs[i] = mon.NewObject(fmt.Sprintf("cell%d", i), i)
		}
		for i := 0; i < procs; i++ {
			i := i
			m.Spawn(fmt.Sprintf("w%d", i), i, func(p *sim.Proc) {
				for rep := 0; rep < iters; rep++ {
					m.IntOps(p, 2000)
					objs[(i+rep)%procs].Write(p, func() {})
					m.Flops(p, 20)
				}
			})
		}
		if err := m.E.Run(); err != nil {
			return 0, err
		}
		return m.E.Now(), nil
	}
	off, err := elapsed(replay.ModeOff)
	if err != nil {
		return err
	}
	rec, err := elapsed(replay.ModeRecord)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unmonitored: %10.3f s\n", sim.Seconds(off))
	fmt.Fprintf(w, "recording:   %10.3f s\n", sim.Seconds(rec))
	fmt.Fprintf(w, "overhead:    %10.2f %%\n", 100*float64(rec-off)/float64(off))
	fmt.Fprintf(w, "\npaper: within a few percent of execution time for typical programs\n")
	return nil
}

// runBridge sweeps disk counts for the parallel file tools.
func runBridge(w io.Writer, quick bool) error {
	diskCounts := []int{1, 2, 4, 8, 16, 32}
	blocks := 96
	if quick {
		diskCounts = []int{1, 4, 8}
		blocks = 32
	}
	data := make([]byte, blocks*bridge.BlockBytes)
	rand.New(rand.NewSource(11)).Read(data)
	keys := make([]uint32, blocks*bridge.RecordsPerBlock)
	rng := rand.New(rand.NewSource(12))
	for i := range keys {
		keys[i] = rng.Uint32()
	}
	fmt.Fprintf(w, "%6s %12s %12s %12s %12s\n", "disks", "copy (s)", "search (s)", "compare (s)", "sort (s)")
	base := map[string]int64{}
	for _, d := range diskCounts {
		m := machine.New(ButterflyI(d + 2))
		os := chrysalis.New(m)
		diskNodes := make([]int, d)
		for i := range diskNodes {
			diskNodes[i] = i + 1
		}
		b, err := bridge.New(os, diskNodes, bridge.DefaultDiskConfig())
		if err != nil {
			return err
		}
		times := map[string]int64{}
		_, err = os.MakeProcess(nil, "client", 0, 16, func(self *chrysalis.Process) {
			f, _ := b.Create("data")
			b.Write(self.P, f, data)
			s, _ := b.Create("keys")
			b.Write(self.P, s, bridge.EncodeRecords(keys))

			t0 := m.E.Now()
			if _, err := b.Copy(self.P, f, "copy"); err != nil {
				panic(err)
			}
			times["copy"] = m.E.Now() - t0

			t0 = m.E.Now()
			b.Search(self.P, f, []byte{0xAB, 0xCD})
			times["search"] = m.E.Now() - t0

			g, _ := b.Open("copy")
			t0 = m.E.Now()
			if _, err := b.Compare(self.P, f, g); err != nil {
				panic(err)
			}
			times["compare"] = m.E.Now() - t0

			t0 = m.E.Now()
			if _, err := b.Sort(self.P, s, "sorted", len(keys)); err != nil {
				panic(err)
			}
			times["sort"] = m.E.Now() - t0
			b.Shutdown(self.P)
		})
		if err != nil {
			return err
		}
		if err := m.E.Run(); err != nil {
			return err
		}
		if d == diskCounts[0] {
			for k, v := range times {
				base[k] = v
			}
		}
		fmt.Fprintf(w, "%6d %12.2f %12.2f %12.2f %12.2f\n", d,
			sim.Seconds(times["copy"]), sim.Seconds(times["search"]),
			sim.Seconds(times["compare"]), sim.Seconds(times["sort"]))
	}
	fmt.Fprintf(w, "\npaper: linear speedup on several dozen disks for these operations\n")
	return nil
}

// runConnect sweeps processor counts for the connectionist simulator and
// compares against the thrashing VAX.
func runConnect(w io.Writer, quick bool) error {
	units, fanIn, rounds := 12_000, 5, 2
	procCounts := []int{1, 8, 32, 64, 120}
	if quick {
		units, rounds = 2_000, 1
		procCounts = []int{1, 8, 16}
	}
	net := connect.Random(units, fanIn, 21)
	var t1 int64
	fmt.Fprintf(w, "%6s %12s %10s\n", "procs", "seconds", "speedup")
	for _, p := range procCounts {
		r, err := connect.Run(net, rounds, p)
		if err != nil {
			return err
		}
		if p == 1 {
			t1 = r.ElapsedNs
		}
		fmt.Fprintf(w, "%6d %12.2f %9.1fx\n", p, sim.Seconds(r.ElapsedNs), float64(t1)/float64(r.ElapsedNs))
	}
	// The thrashing comparison needs a network bigger than the VAX's core
	// but comfortable in the Butterfly's 120 MB.
	bigUnits := 150_000
	if quick {
		bigUnits = 40_000
	}
	big := connect.Random(bigUnits, fanIn, 22)
	vax := connect.RunVAX(big, 1, connect.DefaultVAX())
	bf, err := connect.Run(big, 1, procCounts[len(procCounts)-1])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d-unit network (%d MB > the VAX's 8 MB core), one round:\n",
		bigUnits, bigUnits*connect.BytesPerUnit>>20)
	fmt.Fprintf(w, "  VAX (paging):            %10.1f s — \"hopeless thrashing\"\n", sim.Seconds(vax))
	fmt.Fprintf(w, "  Butterfly, %3d procs:    %10.1f s\n", procCounts[len(procCounts)-1], sim.Seconds(bf.ElapsedNs))
	fmt.Fprintf(w, "paper: minutes on the Butterfly vs hours on the VAX\n")
	return nil
}

// runSpeedups runs the graph suite at increasing processor counts.
func runSpeedups(w io.Writer, quick bool) error {
	n, degree := 20_000, 6
	procCounts := []int{1, 16, 64, 120}
	if quick {
		n = 3_000
		procCounts = []int{1, 8}
	}
	g := graphs.Random(n, degree, 31)
	fmt.Fprintf(w, "%6s %18s %18s\n", "procs", "components (s)", "shortest paths (s)")
	var c1, s1 int64
	for _, p := range procCounts {
		_, cres, err := graphs.Components(g, p)
		if err != nil {
			return err
		}
		_, sres, err := graphs.ShortestPaths(g, 0, p)
		if err != nil {
			return err
		}
		if p == 1 {
			c1, s1 = cres.ElapsedNs, sres.ElapsedNs
		}
		fmt.Fprintf(w, "%6d %12.2f (%4.1fx) %12.2f (%4.1fx)\n", p,
			sim.Seconds(cres.ElapsedNs), float64(c1)/float64(cres.ElapsedNs),
			sim.Seconds(sres.ElapsedNs), float64(s1)/float64(sres.ElapsedNs))
	}
	return nil
}

// runFigure6 reproduces the Moviola deadlock view.
func runFigure6(w io.Writer, quick bool) error {
	procs := 8
	if quick {
		procs = 4
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint32, procs*16)
	for i := range keys {
		keys[i] = rng.Uint32() % 1000
	}
	res, err := msort.Run(keys, msort.Config{Procs: procs, Buggy: true, Record: true})
	if err == nil {
		return fmt.Errorf("fig6: buggy sort did not deadlock")
	}
	fmt.Fprintf(w, "deadlock reproduced: %v\n\n", err)
	fmt.Fprintf(w, "Moviola partial-order view (recorded before the hang):\n\n")
	fmt.Fprint(w, replay.BuildGraph(res.Log).RenderASCII())
	return nil
}

// runSARCache measures the SMP buffer cache.
func runSARCache(w io.Writer, quick bool) error {
	msgs := 200
	if quick {
		msgs = 60
	}
	run := func(useCache bool) (smp.Stats, int64, error) {
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		cfg := smp.DefaultConfig()
		cfg.UseSARCache = useCache
		fam, err := smp.NewFamily(os, nil, "pair", []int{0, 1}, smp.Full{}, cfg, func(mem *smp.Member) {
			if mem.ID == 0 {
				for i := 0; i < msgs; i++ {
					if err := mem.Send(1, i, 32, nil); err != nil {
						panic(err)
					}
				}
			} else {
				for i := 0; i < msgs; i++ {
					mem.Recv()
				}
			}
		})
		if err != nil {
			return smp.Stats{}, 0, err
		}
		if err := m.E.Run(); err != nil {
			return smp.Stats{}, 0, err
		}
		return fam.Stats(), m.E.Now(), nil
	}
	withStats, withTime, err := run(true)
	if err != nil {
		return err
	}
	withoutStats, withoutTime, err := run(false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %10s %12s %12s\n", "variant", "time (s)", "map/unmaps", "cache hits")
	fmt.Fprintf(w, "%-14s %10.3f %12d %12d\n", "no cache", sim.Seconds(withoutTime), withoutStats.SARMapOps, withoutStats.SARCacheHits)
	fmt.Fprintf(w, "%-14s %10.3f %12d %12d\n", "SAR cache", sim.Seconds(withTime), withStats.SARMapOps, withStats.SARCacheHits)
	fmt.Fprintf(w, "per-message saving: %.2f ms\n", float64(withoutTime-withTime)/float64(msgs)/1e6)
	return nil
}

// runModels measures a round trip under each programming model.
func runModels(w io.Writer, quick bool) error {
	iters := 50
	if quick {
		iters = 15
	}
	fmt.Fprintf(w, "%-34s %16s\n", "model", "round trip (us)")

	// Shared memory + spin lock handshake (Uniform System style).
	{
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		lock := os.NewSpinLock(0)
		turn := 0
		m.Spawn("ping", 0, func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				for {
					lock.Lock(p)
					if turn == 0 {
						turn = 1
						lock.Unlock(p)
						break
					}
					lock.Unlock(p)
					p.Advance(2 * sim.Microsecond)
				}
			}
		})
		m.Spawn("pong", 1, func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				for {
					lock.Lock(p)
					if turn == 1 {
						turn = 0
						lock.Unlock(p)
						break
					}
					lock.Unlock(p)
					p.Advance(2 * sim.Microsecond)
				}
			}
		})
		if err := m.E.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %16.1f\n", "shared memory + spin locks", sim.Micros(m.E.Now()/int64(iters)))
	}

	// Chrysalis dual queues (raw primitives).
	{
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		q0 := os.NewDualQueue(0, nil)
		q1 := os.NewDualQueue(1, nil)
		var a, b *chrysalis.Process
		var err error
		a, err = os.MakeProcess(nil, "ping", 0, 8, func(self *chrysalis.Process) {
			for i := 0; i < iters; i++ {
				q1.Enqueue(self.P, uint32(i))
				q0.Dequeue(self.P)
			}
		})
		if err != nil {
			return err
		}
		b, err = os.MakeProcess(nil, "pong", 1, 8, func(self *chrysalis.Process) {
			for i := 0; i < iters; i++ {
				q1.Dequeue(self.P)
				q0.Enqueue(self.P, uint32(i))
			}
		})
		if err != nil {
			return err
		}
		_, _ = a, b
		if err := m.E.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %16.1f\n", "Chrysalis dual queues", sim.Micros(m.E.Now()/int64(iters)))
	}

	// SMP messages.
	{
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		_, err := smp.NewFamily(os, nil, "pp", []int{0, 1}, smp.Full{}, smp.DefaultConfig(), func(mem *smp.Member) {
			if mem.ID == 0 {
				for i := 0; i < iters; i++ {
					if err := mem.Send(1, i, 4, nil); err != nil {
						panic(err)
					}
					mem.Recv()
				}
			} else {
				for i := 0; i < iters; i++ {
					mem.Recv()
					if err := mem.Send(0, i, 4, nil); err != nil {
						panic(err)
					}
				}
			}
		})
		if err != nil {
			return err
		}
		if err := m.E.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %16.1f\n", "SMP messages", sim.Micros(m.E.Now()/int64(iters)))
	}

	// Lynx RPC.
	{
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		server, err := lynx.Spawn(os, "server", 1, lynx.DefaultConfig(), nil)
		if err != nil {
			return err
		}
		server.Bind("echo", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
			return args, words, nil
		})
		var per int64
		_, err = lynx.Spawn(os, "client", 0, lynx.DefaultConfig(), func(self *lynx.Proc, th *antfarm.Thread) {
			l := lynx.NewLink(self, server)
			t0 := th.P().Engine().Now()
			for i := 0; i < iters; i++ {
				if _, err := self.Call(th, l, "echo", i, 4); err != nil {
					panic(err)
				}
			}
			per = (th.P().Engine().Now() - t0) / int64(iters)
			server.Shutdown(th)
		})
		if err != nil {
			return err
		}
		if err := m.E.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %16.1f\n", "Lynx remote procedure call", sim.Micros(per))
	}

	// Elmwood object invocation (kernel-mediated RPC with capabilities).
	{
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		k, err := elmwood.Boot(os)
		if err != nil {
			return err
		}
		cap := k.CreateObject(1, map[string]elmwood.Operation{
			"echo": func(p *sim.Proc, args any) any { return args },
		})
		var per int64
		if _, err := os.MakeProcess(nil, "client", 0, 16, func(self *chrysalis.Process) {
			c := k.NewClient(self)
			t0 := m.E.Now()
			for i := 0; i < iters; i++ {
				if _, err := c.Invoke(cap, "echo", i); err != nil {
					panic(err)
				}
			}
			per = (m.E.Now() - t0) / int64(iters)
			k.Shutdown(self.P)
		}); err != nil {
			return err
		}
		if err := m.E.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %16.1f\n", "Elmwood object invocation", sim.Micros(per))
	}

	// Ant Farm channels (cross-farm threads).
	{
		m := machine.New(ButterflyI(2))
		os := chrysalis.New(m)
		chReady := make(chan *antfarm.Channel, 2)
		var per int64
		os.MakeProcess(nil, "pong", 1, 16, func(self *chrysalis.Process) {
			antfarm.Run(self, antfarm.DefaultConfig(), func(t *antfarm.Thread) {
				req := t.Farm.NewChannel(4)
				rep := t.Farm.NewChannel(4)
				chReady <- req
				chReady <- rep
				for i := 0; i < iters; i++ {
					v, _ := req.Recv(t)
					rep.Send(t, v, 1)
				}
			})
		})
		os.MakeProcess(nil, "ping", 0, 16, func(self *chrysalis.Process) {
			antfarm.Run(self, antfarm.DefaultConfig(), func(t *antfarm.Thread) {
				t.P().Advance(1 * sim.Millisecond)
				req := <-chReady
				rep := <-chReady
				t0 := m.E.Now()
				for i := 0; i < iters; i++ {
					req.Send(t, i, 1)
					rep.Recv(t)
				}
				per = (m.E.Now() - t0) / int64(iters)
			})
		})
		if err := m.E.Run(); err != nil {
			return err
		}
		fmt.Fprintf(w, "%-34s %16.1f\n", "Ant Farm channels", sim.Micros(per))
	}

	fmt.Fprintf(w, "\npaper: for the semantics provided, all models' costs are comparable to the Chrysalis primitives\n")
	return nil
}
