package core

import "fmt"

// JobState is a job's lifecycle phase as recorded in the lab's durable
// journal. The lab package aliases these states for its in-memory jobs, so
// the wire, the journal, and the scheduler agree on one vocabulary.
type JobState string

// Job lifecycle states. Queued and Running are transient; Done, Failed, and
// Canceled are terminal.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JournalEvent is one kind of lifecycle transition appended to the journal.
type JournalEvent string

// Journal events. EventInterrupted is written only during recovery: it marks
// a job that the previous process left queued-or-running (or completed
// without a retrievable cached result) and that the restarted scheduler is
// requeuing — safe because every simulation is deterministic and re-execution
// through the content-addressed cache is idempotent.
const (
	EventSubmitted   JournalEvent = "submitted"
	EventStarted     JournalEvent = "started"
	EventCompleted   JournalEvent = "completed"
	EventFailed      JournalEvent = "failed"
	EventCanceled    JournalEvent = "canceled"
	EventInterrupted JournalEvent = "interrupted"
)

// Fleet membership events. A coordinator journals worker arrivals and
// departures so a restart can probe the last-known fleet immediately
// instead of waiting for each worker's next heartbeat. They carry a
// WorkerRecord and no job; replay folds them into a membership table, not
// the job table.
const (
	EventWorkerUp   JournalEvent = "worker-up"
	EventWorkerDown JournalEvent = "worker-down"
)

// Coordination events. EventEpoch fences coordinator generations: each
// takeover durably bumps a monotonically increasing epoch before the new
// primary dispatches anything, and workers reject dispatches stamped with a
// lower epoch. EventSweep records a sweep's identity — its grid-ordered job
// IDs — so a failed-over coordinator can still reassemble the sweep it never
// submitted itself.
const (
	EventEpoch JournalEvent = "epoch"
	EventSweep JournalEvent = "sweep"
)

// FleetEvent reports whether the event mutates fleet membership rather
// than a job's lifecycle.
func (e JournalEvent) FleetEvent() bool {
	return e == EventWorkerUp || e == EventWorkerDown
}

// ControlEvent reports whether the event carries coordination state (epoch
// fencing, sweep identity) rather than a job or membership transition.
func (e JournalEvent) ControlEvent() bool {
	return e == EventEpoch || e == EventSweep
}

// Terminal reports whether the event ends a job's life (and therefore must
// be flushed durably before the journal acknowledges it).
func (e JournalEvent) Terminal() bool {
	return e == EventCompleted || e == EventFailed || e == EventCanceled
}

// JournalRecord is one append-only line in the lab's write-ahead job
// journal. Rec is a strictly increasing record number spanning compactions —
// replay uses it to skip records the snapshot already reflects and to detect
// holes torn out of the middle of the file.
type JournalRecord struct {
	Rec   int64        `json:"rec"`
	Event JournalEvent `json:"event"`
	JobID string       `json:"job_id"`
	// Seq, Spec, and Fingerprint travel only on EventSubmitted, which fully
	// describes the job; later events reference it by ID alone.
	Seq         int    `json:"seq,omitempty"`
	Spec        *Spec  `json:"spec,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Error carries the failure message on EventFailed.
	Error string `json:"error,omitempty"`
	// Worker travels only on fleet membership events (EventWorkerUp /
	// EventWorkerDown), which carry no job.
	Worker *WorkerRecord `json:"worker,omitempty"`
	// Epoch travels only on EventEpoch: the coordinator generation this
	// record fences in. Strictly increasing across takeovers.
	Epoch uint64 `json:"epoch,omitempty"`
	// Sweep travels only on EventSweep.
	Sweep *SweepRecord `json:"sweep,omitempty"`
	// UnixMs timestamps the record (wall clock; informational only — replay
	// depends on order, never on time).
	UnixMs int64 `json:"unix_ms,omitempty"`
}

// SweepRecord names one sweep durably: the journal keeps the grid-ordered
// job IDs so the streaming reassembly endpoint survives coordinator
// replacement — the standby can serve a sweep it never accepted.
type SweepRecord struct {
	SweepID string   `json:"sweep_id"`
	JobIDs  []string `json:"job_ids"`
}

// JobRecord is the compacted per-job state a journal snapshot stores: the
// submission record folded together with the job's last known state.
type JobRecord struct {
	JobID       string   `json:"job_id"`
	Seq         int      `json:"seq"`
	Spec        Spec     `json:"spec"`
	Fingerprint string   `json:"fingerprint"`
	State       JobState `json:"state"`
	Error       string   `json:"error,omitempty"`
}

// Apply advances the record's state by one journal event, enforcing the
// lifecycle state machine; an impossible transition means the journal is
// corrupt (or was edited) and replay must refuse it.
func (r *JobRecord) Apply(ev JournalEvent, errText string) error {
	switch ev {
	case EventStarted:
		if r.State != JobQueued {
			return r.badTransition(ev)
		}
		r.State = JobRunning
	case EventCompleted:
		// Queued → done is legal: a cache hit completes a job at submit
		// time without it ever starting.
		if r.State != JobQueued && r.State != JobRunning {
			return r.badTransition(ev)
		}
		r.State = JobDone
	case EventFailed:
		if r.State != JobQueued && r.State != JobRunning {
			return r.badTransition(ev)
		}
		r.State = JobFailed
		r.Error = errText
	case EventCanceled:
		if r.State != JobQueued && r.State != JobRunning {
			return r.badTransition(ev)
		}
		r.State = JobCanceled
	case EventInterrupted:
		// Recovery requeues jobs found mid-flight, and done jobs whose
		// cached result blob is gone; failed/canceled jobs stay terminal.
		if r.State == JobFailed || r.State == JobCanceled {
			return r.badTransition(ev)
		}
		r.State = JobQueued
	default:
		return fmt.Errorf("core: unknown journal event %q for job %s", ev, r.JobID)
	}
	return nil
}

func (r *JobRecord) badTransition(ev JournalEvent) error {
	return fmt.Errorf("core: journal event %q invalid for job %s in state %q", ev, r.JobID, r.State)
}
