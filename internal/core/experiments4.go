package core

import (
	"fmt"
	"io"

	"butterfly/internal/chrysalis"
	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/smp"
	"butterfly/internal/us"
)

func init() {
	register(Experiment{
		ID:    "degrade",
		Title: "Graceful degradation under injected node failures",
		Paper: "with up to 256 processors, individual node failures are a fact of life; the PNC retries dropped packets and applications must redistribute work from dead processors",
		Run:   runDegrade,
		// The experiment builds its own kill schedules per column; the driver
		// must not also attach the ambient -faults configuration.
		ManagesFaults: true,
	})
}

// degradeNodes is the machine size for every degradation sweep.
const degradeNodes = 64

// degradeBase returns the fault configuration shared by every column: the
// ambient -faults config if one was given (its kill schedule is discarded —
// the experiment derives its own), else a light transient-fault background.
func degradeBase() fault.Config {
	if amb := fault.Ambient(); amb != nil && amb.Enabled() {
		c := *amb
		c.Failures = nil
		return c
	}
	return fault.Config{Seed: 1, DropProb: 0.0005}
}

// killSchedule kills the k highest-numbered nodes (node 0 hosts the
// generators and coordinators and never dies), spread across the middle of
// the baseline run: the j-th death lands at start + (20% + j·50%/k) of the
// failure-free elapsed time.
func killSchedule(nodes, k int, startNs, baseNs int64) []fault.NodeFailure {
	fs := make([]fault.NodeFailure, k)
	for j := 0; j < k; j++ {
		at := startNs + baseNs/5 + int64(j)*(baseNs/2)/int64(k)
		fs[j] = fault.NodeFailure{Node: nodes - 1 - j, At: at}
	}
	return fs
}

// runDegrade sweeps 0→8 node failures over a Uniform System workload, an
// SMP coordinator, and the hotspot spinner, reporting throughput decline.
func runDegrade(w io.Writer, quick bool) error {
	fails := []int{0, 1, 2, 4, 8}
	if quick {
		fails = []int{0, 2, 8}
	}
	base := degradeBase()

	// (a) Uniform System: scattered row fetch + flops, redistributing the
	// tasks of dead workers and re-fetching lost rows from a node-0 replica.
	fmt.Fprintf(w, "Uniform System scattered row-fetch, %d workers:\n", degradeNodes)
	fmt.Fprintf(w, "%8s %14s %10s %8s %10s %10s %8s %10s\n",
		"failed", "elapsed (ms)", "tasks/s", "redist", "retried", "failed", "recov", "drops")
	var usStart, usBase int64
	for _, k := range fails {
		cfg := base
		if k > 0 {
			cfg.Failures = killSchedule(degradeNodes, k, usStart, usBase)
		}
		r, err := degradeUS(cfg, quick)
		if err != nil {
			return err
		}
		if k == 0 {
			usStart, usBase = r.startNs, r.elapsedNs
		}
		fmt.Fprintf(w, "%8d %14.2f %10.0f %8d %10d %10d %8d %10d\n",
			k, sim.Millis(r.elapsedNs), float64(r.tasks)/sim.Seconds(r.elapsedNs),
			r.st.TasksRedistributed, r.st.TasksRetried, r.st.TasksFailed,
			r.recovered, r.fst.Drops)
	}

	// (b) SMP: a full-topology coordinator round-trip; the coordinator drops
	// dead peers from its live set and bounds every wait with a timeout.
	fmt.Fprintf(w, "\nSMP coordinator rounds, %d members (full topology):\n", degradeNodes)
	fmt.Fprintf(w, "%8s %14s %12s %10s %8s %10s\n",
		"failed", "elapsed (ms)", "replies/s", "replies", "lost", "drops")
	var smpStart, smpBase int64
	for _, k := range fails {
		cfg := base
		if k > 0 {
			cfg.Failures = killSchedule(degradeNodes, k, smpStart, smpBase)
		}
		r, err := degradeSMP(cfg, quick)
		if err != nil {
			return err
		}
		if k == 0 {
			smpStart, smpBase = r.startNs, r.elapsedNs
		}
		fmt.Fprintf(w, "%8d %14.2f %12.0f %10d %8d %10d\n",
			k, sim.Millis(r.elapsedNs), float64(r.replies)/sim.Seconds(r.elapsedNs),
			r.replies, r.lost, r.fst.Drops)
	}

	// (c) Hotspot: raw spinners hammering node 0 for a fixed virtual
	// interval; dead nodes simply stop contributing references.
	deadline := int64(40 * sim.Millisecond)
	if quick {
		deadline = 15 * sim.Millisecond
	}
	fmt.Fprintf(w, "\nHotspot spinners, %d nodes, %d ms window:\n", degradeNodes, deadline/sim.Millisecond)
	fmt.Fprintf(w, "%8s %12s %12s %10s %12s\n", "failed", "ops", "ops/s", "drops", "retransmits")
	for _, k := range fails {
		cfg := base
		if k > 0 {
			// Elapsed time is the window itself: no calibration run needed.
			cfg.Failures = killSchedule(degradeNodes, k, 0, deadline)
		}
		ops, fst, err := degradeHotspot(cfg, deadline)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%8d %12d %12.0f %10d %12d\n",
			k, ops, float64(ops)/sim.Seconds(deadline), fst.Drops, fst.Retransmits)
	}
	fmt.Fprintf(w, "\nthroughput declines roughly in proportion to lost processors: no hangs, no collapse\n")
	return nil
}

// degradeUSResult carries one Uniform System degradation run.
type degradeUSResult struct {
	startNs   int64 // virtual time the generation began (after setup)
	elapsedNs int64
	tasks     int
	recovered int // rows re-fetched from the node-0 replica after a node died
	st        us.Stats
	fst       fault.Stats
}

// degradeUS runs one fixed-size generation: each task fetches a scattered
// row, computes on it, and folds the result into a node-0 accumulator. Rows
// homed on a dead node are recovered from a replica on node 0 via a
// Chrysalis catch block — the application-level half of fault tolerance.
func degradeUS(fc fault.Config, quick bool) (degradeUSResult, error) {
	n, rowWords, flops := 512, 1024, 200
	if quick {
		n, rowWords, flops = 160, 512, 100
	}
	mcfg := ButterflyI(degradeNodes)
	mcfg.NoSwitchContention = true
	m := machine.New(mcfg)
	osys := chrysalis.New(m)
	m.AttachFaults(fault.NewInjector(fc))
	var res degradeUSResult
	var scErr error
	u, err := us.Initialize(osys, us.DefaultConfig(degradeNodes), func(g *us.Worker) {
		sc, err := g.U.ScatterRows(g, n, rowWords*4, 0)
		if err != nil {
			scErr = err
			return
		}
		g.P.Sync()
		res.startNs = m.E.Now()
		g.U.GenOnIndex(g, n, func(tw *us.Worker, i int) {
			p := tw.P
			if ex := osys.Catch(p, func() {
				m.BlockCopy(p, sc.NodeOf(i), p.Node, rowWords)
			}); ex != nil {
				// The row's home memory is gone: refetch the replica.
				res.recovered++
				m.BlockCopy(p, 0, p.Node, rowWords)
			}
			m.Flops(p, flops)
			m.Write(p, 0, 2)
		})
		g.P.Sync()
		res.elapsedNs = m.E.Now() - res.startNs
	})
	if err != nil {
		return res, err
	}
	if err := m.E.Run(); err != nil {
		return res, err
	}
	if scErr != nil {
		return res, scErr
	}
	res.tasks = n
	res.st = u.Stats()
	res.fst = m.Faults().Stats()
	return res, nil
}

// degradeSMPResult carries one SMP degradation run.
type degradeSMPResult struct {
	startNs   int64
	elapsedNs int64
	replies   int // replies the coordinator collected
	lost      int // replies it gave up waiting for
	fst       fault.Stats
}

// degradeSMP runs a coordinator (member 0, node 0) that each round messages
// every live peer and collects replies with a bounded wait, shrinking its
// live set as nodes die. Peers reply until the coordinator announces the end.
func degradeSMP(fc fault.Config, quick bool) (degradeSMPResult, error) {
	rounds := 24
	if quick {
		rounds = 8
	}
	const (
		workTag        = 1
		stopTag        = 2
		collectTimeout = 3 * sim.Millisecond
	)
	mcfg := ButterflyI(degradeNodes)
	mcfg.NoSwitchContention = true
	m := machine.New(mcfg)
	osys := chrysalis.New(m)
	m.AttachFaults(fault.NewInjector(fc))
	nodes := make([]int, degradeNodes)
	for i := range nodes {
		nodes[i] = i
	}
	var res degradeSMPResult
	done := false
	_, err := smp.NewFamily(osys, nil, "degrade", nodes, smp.Full{}, smp.DefaultConfig(), func(mem *smp.Member) {
		if mem.ID != 0 {
			// Peer: serve work until the coordinator says stop (or dies —
			// it never does, but the timeout guarantees progress anyway).
			for !done {
				msg, ok := mem.RecvTimeout(2 * collectTimeout)
				if !ok {
					continue
				}
				if msg.Tag == stopTag {
					return
				}
				m.Flops(mem.P, 50)
				// Best-effort reply: if the path back fails the coordinator's
				// collect timeout accounts for the lost answer.
				_ = mem.SendRetry(0, workTag, 16, nil, 4)
			}
			return
		}
		members := len(mem.Fam.Members)
		res.startNs = m.E.Now()
		for r := 0; r < rounds; r++ {
			live := 0
			for d := 1; d < members; d++ {
				if m.NodeFailed(mem.Fam.Members[d].Node()) {
					continue
				}
				if err := mem.SendRetry(d, workTag, 64, nil, 4); err != nil {
					continue // peer died mid-send
				}
				live++
			}
			got := 0
			for got < live {
				if _, ok := mem.RecvTimeout(collectTimeout); !ok {
					break // a counted peer died before replying
				}
				got++
			}
			res.replies += got
			res.lost += live - got
		}
		res.elapsedNs = m.E.Now() - res.startNs
		done = true
		for d := 1; d < members; d++ {
			if m.NodeFailed(mem.Fam.Members[d].Node()) {
				continue
			}
			// Best-effort stop: peers also watch the shared done flag, so a
			// failed delivery cannot strand them.
			_ = mem.SendRetry(d, stopTag, 1, nil, 4)
		}
	})
	if err != nil {
		return res, err
	}
	if err := m.E.Run(); err != nil {
		return res, err
	}
	res.fst = m.Faults().Stats()
	return res, nil
}

// degradeHotspot counts atomic references completed against node 0 by
// spinners on every other node within a fixed virtual window. Transient
// reference failures are caught in the loop; spinners on dead nodes stop.
func degradeHotspot(fc fault.Config, deadline int64) (ops uint64, fst fault.Stats, err error) {
	// Poll slowly enough that the hot module is not saturated: at
	// saturation its service rate alone bounds throughput and lost
	// processors would be invisible in the curve.
	const pollNs = 250 * sim.Microsecond
	mcfg := ButterflyI(degradeNodes)
	mcfg.NoSwitchContention = true
	m := machine.New(mcfg)
	m.AttachFaults(fault.NewInjector(fc))
	for i := 1; i < degradeNodes; i++ {
		m.Spawn("spinner", i, func(p *sim.Proc) {
			for p.LocalNow() < deadline {
				var e error
				func() {
					defer fault.CatchRef(&e)
					m.Atomic(p, 0)
					p.Sync()
				}()
				if e == nil {
					ops++
				}
				p.Advance(pollNs)
			}
		})
	}
	if err := m.E.Run(); err != nil {
		return 0, fst, err
	}
	return ops, m.Faults().Stats(), nil
}
