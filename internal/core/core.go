// Package core is the public face of the Butterfly reproduction: machine
// presets matching the hardware generations the paper describes, boot
// helpers that assemble a machine with its Chrysalis instance, and the
// experiment registry that regenerates every table and figure of the paper
// (see DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results).
package core

import (
	"fmt"
	"io"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
)

// ButterflyI returns the configuration of the original Butterfly-I node:
// 8 MHz MC68000 with software floating point, 1 MB memory, PNC-mediated
// remote references at about 4 µs.
func ButterflyI(nodes int) machine.Config {
	return machine.DefaultConfig(nodes)
}

// ButterflyFP returns the 1986 floating-point upgrade (MC68020 + MC68881
// daughter board): the department built a 16-node machine of these.
func ButterflyFP(nodes int) machine.Config {
	return machine.HardwareFloatConfig(nodes)
}

// ButterflyPlus approximates the Butterfly Plus (Butterfly 1000 series)
// relative improvements quoted in §4.1: local references improved by a
// factor of four, remote references by only a factor of two — so locality
// matters even more.
func ButterflyPlus(nodes int) machine.Config {
	c := machine.DefaultConfig(nodes)
	c.MemCycleNs /= 4
	c.LocalOverheadNs /= 4
	c.PNCOverheadNs /= 2
	c.Net.HopLatency /= 2
	c.Net.BytesPerSecond *= 2
	c.FlopNs = 4_000
	c.IntOpNs = 125
	return c
}

// Boot assembles a machine with a fresh Chrysalis instance.
func Boot(cfg machine.Config) (*machine.Machine, *chrysalis.OS) {
	m := machine.New(cfg)
	return m, chrysalis.New(m)
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the short name used by `butterflybench -experiment <id>` (and
	// the DESIGN.md experiment index).
	ID string
	// Title is a one-line description.
	Title string
	// Paper quotes the claim being reproduced.
	Paper string
	// Run executes the experiment, writing its table to w. quick selects a
	// reduced-scale variant for tests and smoke runs.
	Run func(w io.Writer, quick bool) error
	// ManagesFaults marks experiments that attach their own fault injectors;
	// the driver must not also attach the ambient -faults configuration to
	// their machines.
	ManagesFaults bool
	// WorkloadDriven marks experiments that serve an open-loop workload:
	// they honor a workload directive string (Spec.Workload,
	// `butterflybench -workload`) overlaid on their default traffic config.
	WorkloadDriven bool
	// Partitionable marks experiments written for the partitioned parallel
	// engine: all processes spawned before Run, no cross-node wakes, no Go
	// state shared between nodes. Only these accept a partition-count
	// override (Spec.Partitions, `butterflybench -partitions`); their
	// machines opt in by setting machine.Config.Partitions >= 1, and their
	// results are bit-identical at every partition count.
	Partitionable bool
}

// registry is populated by experiments.go.
var registry []Experiment

// register adds an experiment at package init time. Duplicate ids would make
// Lookup (and every job fingerprint derived from an id) ambiguous, so they
// are rejected loudly.
func register(e Experiment) {
	for _, x := range registry {
		if x.ID == e.ID {
			panic(fmt.Sprintf("core: duplicate experiment id %q", e.ID))
		}
	}
	registry = append(registry, e)
}

// Experiments lists every registered experiment in registration order.
func Experiments() []Experiment {
	return append([]Experiment(nil), registry...)
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, quick bool) error {
	for _, e := range registry {
		fmt.Fprintf(w, "\n===== %s: %s =====\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n\n", e.Paper)
		if err := e.Run(w, quick); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
	}
	return nil
}
