package core

import (
	"fmt"
	"sort"

	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/switchnet"
	"butterfly/internal/workload"
)

// Spec is the serializable description of one experiment job: which
// experiment to run, at what scale, on what machine, under what fault
// schedule, and with what observation attached. It is the unit the
// experiment lab queues, fingerprints, and caches — two specs that
// canonicalize identically name the same deterministic simulation and
// therefore the same result.
type Spec struct {
	// Experiment is the registry id (`butterflybench -list`).
	Experiment string `json:"experiment"`
	// Quick selects the reduced-scale variant used by tests and smoke runs.
	Quick bool `json:"quick,omitempty"`
	// Preset, when non-empty, rebuilds every machine the experiment boots
	// with the named hardware preset at its requested node count: "b1"
	// (Butterfly I), "bfp" (floating-point upgrade), "bplus" (Butterfly
	// Plus). Empty keeps each experiment's own choice.
	Preset string `json:"preset,omitempty"`
	// Nodes, when positive, overrides the node count of every machine the
	// experiment boots. Only meaningful for experiments whose topology
	// scales with the machine (e.g. numa); an experiment that indexes nodes
	// beyond the override fails with a machine-range error.
	Nodes int `json:"nodes,omitempty"`
	// Faults is a fault-schedule directive string (internal/fault syntax,
	// e.g. "seed 7; drop 0.001; kill 5 @ 10ms"). Applied to every machine
	// the experiment boots, exactly like `butterflybench -faults` — unless
	// the experiment manages its own injectors.
	Faults string `json:"faults,omitempty"`
	// FaultSeed, when non-nil, overrides the schedule's seed. A pointer so
	// that an explicit seed of 0 is distinguishable from "unset".
	FaultSeed *uint64 `json:"fault_seed,omitempty"`
	// Workload is a workload directive string (internal/workload syntax,
	// e.g. "pattern bursty; rate 6000; seed 7; duration 60ms") overlaid on
	// a workload-driven experiment's default traffic config, exactly like
	// `butterflybench -workload`. Valid only for experiments marked
	// WorkloadDriven; it changes the printed table, so it participates in
	// the lab cache fingerprint.
	Workload string `json:"workload,omitempty"`
	// Partitions, when positive, runs the experiment's machines on the
	// partitioned parallel engine with that many partitions. Valid only for
	// experiments marked Partitionable; results are bit-identical at every
	// partition count (including 1, the sequential reference), so this axis
	// trades wall-clock time, never physics. Incompatible with Faults.
	Partitions int `json:"partitions,omitempty"`
	// Topology, when non-empty, rebuilds every machine the experiment boots
	// on the named interconnect family: "butterfly" (the default machine),
	// "fattree", "dragonfly", or "mesh". The link calibration (hop latency,
	// port bandwidth) carries over; only the wiring changes. It changes
	// every remote-reference latency, so it participates in the lab cache
	// fingerprint; the empty string canonicalizes identically to specs that
	// predate the axis.
	Topology string `json:"topology,omitempty"`
	// Probe attaches observability probes to every machine; the contention
	// report lands in Result.ProbeReport (never interleaved with other
	// jobs' output).
	Probe bool `json:"probe,omitempty"`
	// TimeoutMs bounds the job's wall-clock execution time; 0 means no
	// bound. A timed-out job's engines are interrupted and the job fails.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Retries is how many times a retryable failure (timeout — the only
	// nondeterministic one) is retried. Fault-injected failures are
	// deterministic, so retrying them is pointless and not attempted.
	Retries int `json:"retries,omitempty"`
}

// presets maps Spec.Preset names to machine-config constructors.
var presets = map[string]func(int) machine.Config{
	"b1":    ButterflyI,
	"bfp":   ButterflyFP,
	"bplus": ButterflyPlus,
}

// PresetNames lists the valid Spec.Preset values, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Validate checks the spec against the registry and the fault-schedule
// grammar, returning a descriptive error for anything a remote submitter
// could get wrong.
func (s Spec) Validate() error {
	if s.Experiment == "" {
		return fmt.Errorf("spec: experiment id is required")
	}
	if _, ok := Lookup(s.Experiment); !ok {
		return fmt.Errorf("spec: unknown experiment %q", s.Experiment)
	}
	if s.Preset != "" {
		if _, ok := presets[s.Preset]; !ok {
			return fmt.Errorf("spec: unknown preset %q (valid: %v)", s.Preset, PresetNames())
		}
	}
	if s.Nodes < 0 {
		return fmt.Errorf("spec: nodes must be >= 0, got %d", s.Nodes)
	}
	if s.Partitions < 0 {
		return fmt.Errorf("spec: partitions must be >= 0, got %d", s.Partitions)
	}
	if s.Partitions > 0 {
		exp, _ := Lookup(s.Experiment)
		if !exp.Partitionable {
			return fmt.Errorf("spec: experiment %q is not partitionable", s.Experiment)
		}
		if s.Faults != "" {
			return fmt.Errorf("spec: faults and partitions are incompatible (fault injection needs the sequential engine)")
		}
	}
	if s.Faults != "" {
		if _, err := fault.ParseConfig(s.Faults); err != nil {
			return fmt.Errorf("spec: faults: %w", err)
		}
	} else if s.FaultSeed != nil {
		return fmt.Errorf("spec: fault_seed has no effect without faults")
	}
	if s.Workload != "" {
		exp, _ := Lookup(s.Experiment)
		if !exp.WorkloadDriven {
			return fmt.Errorf("spec: experiment %q is not workload-driven", s.Experiment)
		}
		if _, err := workload.Parse(s.Workload, workload.Default()); err != nil {
			return fmt.Errorf("spec: workload: %w", err)
		}
	}
	if s.Topology != "" {
		if _, err := switchnet.ParseTopology(s.Topology); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if s.TimeoutMs < 0 {
		return fmt.Errorf("spec: timeout_ms must be >= 0, got %d", s.TimeoutMs)
	}
	if s.Retries < 0 {
		return fmt.Errorf("spec: retries must be >= 0, got %d", s.Retries)
	}
	return nil
}

// FaultConfig resolves the spec's fault schedule (with any seed override
// applied), or nil when the spec injects no faults. Call after Validate.
func (s Spec) FaultConfig() (*fault.Config, error) {
	if s.Faults == "" {
		return nil, nil
	}
	cfg, err := fault.ParseConfig(s.Faults)
	if err != nil {
		return nil, err
	}
	if s.FaultSeed != nil {
		cfg.Seed = *s.FaultSeed
	}
	return cfg, nil
}

// ConfigTransform returns the machine-config rewrite this spec implies, to
// be applied to every machine the experiment boots (via the machine
// package's scoped construction hooks), or nil when the spec requests no
// override.
func (s Spec) ConfigTransform() func(machine.Config) machine.Config {
	if s.Preset == "" && s.Nodes == 0 && s.Partitions == 0 && s.Topology == "" {
		return nil
	}
	return func(c machine.Config) machine.Config {
		nodes := c.Nodes
		if s.Nodes > 0 {
			nodes = s.Nodes
		}
		out := c
		if s.Preset != "" {
			out = presets[s.Preset](nodes)
			// The contention shortcut is a per-experiment modelling choice,
			// not a hardware property: preserve it.
			out.NoSwitchContention = c.NoSwitchContention
			out.Partitions = c.Partitions
		} else if s.Nodes > 0 {
			out.Nodes = nodes
			// Force machine.New to re-derive the switch topology for the
			// new node count.
			out.Net = switchnet.Config{}
		}
		// The partition override only raises partitioning on machines the
		// experiment already built partition-aware (Partitions >= 1): an
		// experiment that opted out (a classic sequential machine) keeps
		// its engine, so the override can never break a non-partition-safe
		// program.
		if s.Partitions > 0 && out.Partitions > 0 {
			out.Partitions = s.Partitions
		}
		if s.Topology != "" {
			// ParseTopology canonicalizes "" and "butterfly" to the same
			// family, and Validate has already rejected unknown names.
			t, _ := switchnet.ParseTopology(s.Topology)
			out.Topology = t
		}
		return out
	}
}

// Result is the structured outcome of one executed (or cache-served) spec.
type Result struct {
	// Spec is the job that produced this result.
	Spec Spec `json:"spec"`
	// Fingerprint is the content address the lab cached the result under
	// (empty when produced outside the lab).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Table is the experiment's stdout: the paper table or figure text,
	// byte-identical to a sequential `butterflybench` run.
	Table string `json:"table"`
	// Machines, Events, and VTimeNs fingerprint the simulation trajectory:
	// machines booted, total engine events executed, and summed final
	// virtual clocks — the same reduction testdata/determinism.golden pins.
	Machines int    `json:"machines"`
	Events   uint64 `json:"events"`
	VTimeNs  int64  `json:"vtime_ns"`
	// WallNs is how long the producing run took in wall-clock time (the
	// original run's time when served from cache).
	WallNs int64 `json:"wall_ns"`
	// Attempts counts executions including retries (1 for a first-try
	// success; 0 for a pure cache hit).
	Attempts int `json:"attempts,omitempty"`
	// ProbeReport is the per-machine contention report when Spec.Probe was
	// set.
	ProbeReport string `json:"probe_report,omitempty"`
	// CacheHit marks a result served from the content-addressed cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// EventsPerSec is the simulator's throughput while producing this result.
func (r *Result) EventsPerSec() float64 {
	if r.WallNs <= 0 {
		return 0
	}
	return float64(r.Events) / (float64(r.WallNs) / 1e9)
}
