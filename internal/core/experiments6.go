package core

// Modern-scale experiments on the topology subsystem: a STREAM-style triad
// bandwidth sweep across data placements and interconnect families
// (streamnuma), and the NYU-Ultracomputer hot-spot re-run with in-network
// combining fetch-and-add switched on and off (combine). Both expose their
// measurement cores as exported functions returning structured rows, so
// `butterflybench -bench-out` records the same numbers the tables print.

import (
	"fmt"
	"io"
	"sort"

	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
)

func init() {
	register(Experiment{
		ID:    "streamnuma",
		Title: "STREAM triad bandwidth: local vs remote vs striped placement, per topology",
		Paper: "remote references take roughly five times as long as a local reference; spreading data over all memories relieves contention (extended across butterfly, fattree, dragonfly, and mesh interconnects)",
		Run:   runStreamNUMA,
	})
	register(Experiment{
		ID:    "combine",
		Title: "Hot-spot fetch-and-add at 512-4096 nodes, with and without combining switches",
		Paper: "over a hundred processors can issue simultaneous remote references, leading to performance degradation far beyond the nominal factor of five (the Ultracomputer's combining networks answer this)",
		Run:   runCombine,
	})
}

// StreamRow is one measured placement of the streamnuma experiment.
type StreamRow struct {
	Topology  string  `json:"topology"`
	Placement string  `json:"placement"`
	Nodes     int     `json:"nodes"`
	Workers   int     `json:"workers"`
	MBps      float64 `json:"mb_per_sec"`
	// WordNs is the mean per-word reference time seen by one worker.
	WordNs int64 `json:"word_ns"`
}

// streamComputeNs is the triad's per-element compute charge (two integer
// operations' worth — STREAM is bandwidth-bound, not compute-bound).
const streamComputeNs = 1000

// StreamNUMA runs a STREAM-style triad (a[i] = b[i] + q*c[i]: two reads and
// a write per element, 3 words) on the given interconnect with three data
// placements:
//
//	local   — every worker's arrays live in its own memory
//	remote  — all arrays live in node 0's memory (the naive serial
//	          placement: every reference crosses the network and the one
//	          module serializes them)
//	striped — arrays are striped round-robin over all memories (the
//	          Uniform System's scatter idiom), modelled per home node
//
// Workers run on nodes 1..workers so node 0 is always the far memory.
func StreamNUMA(topology switchnet.Topology, nodes, workers, items int) ([]StreamRow, error) {
	if workers >= nodes {
		workers = nodes - 1
	}
	rows := make([]StreamRow, 0, 3)
	for _, placement := range []string{"local", "remote", "striped"} {
		cfg := ButterflyI(nodes)
		cfg.Topology = topology
		m := machine.New(cfg)
		pl := placement
		for wk := 1; wk <= workers; wk++ {
			m.Spawn("triad", wk, func(p *sim.Proc) {
				switch pl {
				case "local":
					m.Sweep(p, items, streamComputeNs, []machine.Ref{{Node: p.Node, Words: 3}})
				case "remote":
					m.Sweep(p, items, streamComputeNs, []machine.Ref{{Node: 0, Words: 3}})
				case "striped":
					// One sweep per home node: the stripe's references
					// grouped by the memory they land in.
					n := m.N()
					per, rem := items/n, items%n
					for t := 0; t < n; t++ {
						cnt := per
						if t < rem {
							cnt++
						}
						if cnt > 0 {
							m.Sweep(p, cnt, streamComputeNs, []machine.Ref{{Node: t, Words: 3}})
						}
					}
				}
			})
		}
		if err := m.E.Run(); err != nil {
			return nil, err
		}
		elapsed := m.E.Now()
		if elapsed <= 0 {
			return nil, fmt.Errorf("streamnuma: empty run")
		}
		words := int64(workers) * int64(items) * 3
		bytes := float64(words * 4)
		rows = append(rows, StreamRow{
			Topology:  string(m.Topology()),
			Placement: placement,
			Nodes:     nodes,
			Workers:   workers,
			MBps:      bytes / (float64(elapsed) / 1e9) / 1e6,
			WordNs:    elapsed / (int64(items) * 3),
		})
	}
	return rows, nil
}

// runStreamNUMA prints the triad bandwidth table across every topology.
func runStreamNUMA(w io.Writer, quick bool) error {
	nodes, workers, items := 64, 16, 2048
	if quick {
		nodes, workers, items = 16, 8, 256
	}
	fmt.Fprintf(w, "STREAM triad, %d workers x %d elements, %d nodes\n\n", workers, items, nodes)
	fmt.Fprintf(w, "%-10s %-8s %12s %12s %10s\n", "topology", "placed", "MB/s", "us/word", "vs local")
	for _, topo := range switchnet.Topologies() {
		rows, err := StreamNUMA(topo, nodes, workers, items)
		if err != nil {
			return err
		}
		var localMBps float64
		for _, r := range rows {
			if r.Placement == "local" {
				localMBps = r.MBps
			}
			ratio := r.MBps / localMBps
			fmt.Fprintf(w, "%-10s %-8s %12.1f %12.3f %9.2fx\n",
				r.Topology, r.Placement, r.MBps, float64(r.WordNs)/1000, ratio)
		}
	}
	fmt.Fprintf(w, "\npaper: spreading data over all memories relieves contention;\nthe mesh pays its sqrt(N) diameter on every remote word\n")
	return nil
}

// CombineRow is one measured cell of the combining hot-spot experiment.
type CombineRow struct {
	Nodes     int    `json:"nodes"`
	Combining bool   `json:"combining"`
	Ops       uint64 `json:"ops"`
	// CombinedPct is the share of fetch-and-adds merged in the network.
	CombinedPct float64 `json:"combined_pct"`
	MeanNs      int64   `json:"mean_ns"`
	P99Ns       int64   `json:"p99_ns"`
	// ContentionNs is the total time packets spent queued for switch
	// links — the hot-spot tree convoy combining exists to remove.
	ContentionNs int64  `json:"contention_ns"`
	SavedHops    uint64 `json:"saved_hops"`
}

// combinePolls is how many fetch-and-adds each spinner issues.
const combinePolls = 12

// CombineHotspot drives every node but the owner into a closed-loop
// fetch-and-add storm on one word of node 0's memory and measures the
// per-operation latency distribution plus the switch-link contention, with
// or without combining switches.
func CombineHotspot(nodes int, combining bool) (CombineRow, error) {
	cfg := ButterflyI(nodes)
	cfg.Combining = combining
	m := machine.New(cfg)
	latencies := make([]int64, 0, (nodes-1)*combinePolls)
	for s := 1; s < nodes; s++ {
		m.Spawn("spinner", s, func(p *sim.Proc) {
			for i := 0; i < combinePolls; i++ {
				t0 := p.Now()
				m.AtomicWord(p, 0, 0)
				p.Sync() // flush the lazy charge so Now reflects the op
				latencies = append(latencies, p.Now()-t0)
				p.Advance(2 * sim.Microsecond)
			}
		})
	}
	if err := m.E.Run(); err != nil {
		return CombineRow{}, err
	}
	if len(latencies) == 0 {
		return CombineRow{}, fmt.Errorf("combine: no operations measured")
	}
	var sum int64
	for _, l := range latencies {
		sum += l
	}
	sorted := append([]int64(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	cs := m.CombineStats()
	row := CombineRow{
		Nodes:        nodes,
		Combining:    combining,
		Ops:          uint64(len(latencies)),
		MeanNs:       sum / int64(len(latencies)),
		P99Ns:        sorted[len(sorted)*99/100],
		ContentionNs: m.Net.Stats().ContentionNs,
		SavedHops:    cs.SavedHops,
	}
	if cs.Requests > 0 {
		row.CombinedPct = 100 * float64(cs.Combined) / float64(cs.Requests)
	}
	return row, nil
}

// runCombine prints the hot-spot table with combining off and on.
func runCombine(w io.Writer, quick bool) error {
	counts := []int{512, 1024, 2048, 4096}
	if quick {
		counts = []int{64, 128}
	}
	fmt.Fprintf(w, "hot-spot fetch-and-add on one word, %d polls per node\n\n", combinePolls)
	fmt.Fprintf(w, "%6s %9s %12s %12s %16s %10s\n",
		"nodes", "combining", "mean (us)", "p99 (us)", "contention (ms)", "combined")
	for _, n := range counts {
		var off CombineRow
		for _, comb := range []bool{false, true} {
			row, err := CombineHotspot(n, comb)
			if err != nil {
				return err
			}
			if !comb {
				off = row
			}
			fmt.Fprintf(w, "%6d %9v %12.2f %12.2f %16.3f %9.1f%%\n",
				row.Nodes, row.Combining, float64(row.MeanNs)/1000, float64(row.P99Ns)/1000,
				float64(row.ContentionNs)/1e6, row.CombinedPct)
		}
		_ = off
	}
	fmt.Fprintf(w, "\nUltracomputer: combining collapses the hot-spot convoy — the module\nsees one request per round trip no matter how many processors poll\n")
	return nil
}
