// Experiments E25–E28: the Butterfly run as a *service* under open-loop
// stochastic load (ROADMAP item 4). The paper evaluates closed, fixed-size
// programs; these experiments put sustained traffic on the same runtimes —
// Lynx RPC, Uniform System task dispatch, the hot-spot shared counter —
// with SLO accounting in virtual time, a measured saturation knee, a
// calibration harness holding the simulator to paper-derived expectations
// within explicit tolerances, and a brownout that kills server nodes
// mid-traffic.
package core

import (
	"fmt"
	"io"
	"strings"

	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/slo"
	"butterfly/internal/workload"
	wcal "butterfly/internal/workload/calibrate"
)

func init() {
	register(Experiment{
		ID:             "service",
		Title:          "Open-loop traffic against Lynx RPC, US tasks, and the hot-spot counter, with SLO verdicts",
		Paper:          "north star: the machine as a production service — latency percentiles and verdicts, not one-shot kernels",
		Run:            runService,
		WorkloadDriven: true,
	})
	register(Experiment{
		ID:             "saturate",
		Title:          "Offered-load sweep over the hot-spot counter service: the saturation knee",
		Paper:          "the Ultracomputer hot-spot regime: a shared counter's module is the capacity limit an open-loop sweep exposes",
		Run:            runSaturate,
		WorkloadDriven: true,
	})
	register(Experiment{
		ID:    "calibrate",
		Title: "Calibration: measured service curves vs paper-derived expectations within explicit tolerances",
		Paper: "§2.1 remote references ~4us; [49] small RPCs ~2ms; M/D/1 queueing on the measured service time",
		Run:   runCalibrate,
	})
	register(Experiment{
		ID:             "brownout",
		Title:          "Brownout under load: servers die mid-traffic, percentiles degrade, the SLO verdict flips and recovers",
		Paper:          "fault schedules (E-degrade) composed with sustained traffic: graceful degradation as a service property",
		Run:            runBrownout,
		ManagesFaults:  true,
		WorkloadDriven: true,
	})
}

// effectiveWorkload resolves the traffic config for a workload-driven
// experiment: the experiment's base overlaid with the directive string in
// effect (Spec.Workload inside the lab, `-workload` on the CLI).
func effectiveWorkload(base workload.Config) (workload.Config, error) {
	if s := workload.Current(); s != "" {
		return workload.Parse(s, base)
	}
	return base, nil
}

// msf formats virtual nanoseconds as fractional milliseconds.
func msf(ns int64) float64 { return float64(ns) / 1e6 }

// completionRate is the service's throughput while it was actually
// completing work: ok completions per second up to the last completion.
// Under overload this is the capacity estimate (the backlog drains at
// exactly the service rate); below the knee it tracks the offered rate.
func completionRate(tr *slo.Tracker) float64 {
	if tr.LastDoneNs <= 0 {
		return 0
	}
	return float64(tr.Completed-tr.Errors) * 1e9 / float64(tr.LastDoneNs)
}

// offeredRate is the realized arrival rate over the traffic horizon.
func offeredRate(tr *slo.Tracker, horizonNs int64) float64 {
	if horizonNs <= 0 {
		return 0
	}
	return float64(tr.Offered) * 1e9 / float64(horizonNs)
}

// maxDepth is the deepest end-of-window in-flight count — the queue-depth
// curve's peak.
func maxDepth(tr *slo.Tracker) int64 {
	var d int64
	for i := range tr.Windows() {
		if v := tr.InFlightAtEnd(i); v > d {
			d = v
		}
	}
	return d
}

// sloSummary prints one service's verdict line: windowed pass count plus
// the run's arc.
func sloSummary(w io.Writer, tr *slo.Tracker, obj slo.Objective) {
	vs := tr.Verdicts(obj)
	pass, total := 0, 0
	for i, v := range vs {
		if tr.Windows()[i].Arrivals == 0 {
			continue
		}
		total++
		if v.Pass {
			pass++
		}
	}
	fmt.Fprintf(w, "slo (p99<=%.0fms, err<=%.1f%%): %d/%d windows pass — %s\n",
		msf(obj.P99Ns), 100*obj.MaxErrRate, pass, total, slo.VerdictLine(vs, tr.Windows()))
}

// E25 "service": one workload, three services. Each adapter serves the
// same arrival stream shape; the output is the production view — offered
// vs achieved throughput, latency percentiles, SLO verdicts per service.
func runService(w io.Writer, quick bool) error {
	base := workload.Default()
	nodes := 24
	base.Rate = 2400
	base.Sources = 4
	base.Servers = 4
	if quick {
		nodes = 16
		base.Rate = 1500
		base.Sources = 3
		base.Servers = 2
		base.DurationNs = 24 * sim.Millisecond
		base.WindowNs = 6 * sim.Millisecond
	}
	cfg, err := effectiveWorkload(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload: pattern=%s rate=%.0f/s duration=%.1fms seed=%d sources=%d servers=%d window=%.1fms\n",
		cfg.Pattern, cfg.Rate, msf(cfg.DurationNs), cfg.Seed, cfg.Sources, cfg.Servers, msf(cfg.WindowNs))

	workers := 16
	if workers > nodes {
		workers = nodes
	}
	services := []struct {
		name string
		obj  slo.Objective
		run  func() (*workload.Result, error)
	}{
		{"lynx-echo", slo.Objective{Name: "echo", P99Ns: 10 * sim.Millisecond, MaxErrRate: 0.001},
			func() (*workload.Result, error) {
				return workload.RunLynxEcho(cfg, workload.EchoOpts{
					Machine: ButterflyI(nodes), EchoFlops: 8, ReplyWords: 16,
				})
			}},
		{"us-tasks", slo.Objective{Name: "tasks", P99Ns: 5 * sim.Millisecond, MaxErrRate: 0.001},
			func() (*workload.Result, error) {
				return workload.RunUSTasks(cfg, workload.TasksOpts{
					Machine: ButterflyI(nodes), Workers: workers, RowWords: 64, TaskFlops: 4,
				})
			}},
		{"hotspot-counter", slo.Objective{Name: "counter", P99Ns: 1 * sim.Millisecond, MaxErrRate: 0.001},
			func() (*workload.Result, error) {
				return workload.RunHotspotCounter(cfg, workload.CounterOpts{
					Machine: ButterflyI(nodes), WorkNs: 50 * sim.Microsecond,
				})
			}},
	}
	for _, s := range services {
		res, err := s.run()
		if err != nil {
			return fmt.Errorf("service %s: %w", s.name, err)
		}
		fmt.Fprintf(w, "\n--- %s ---\n", s.name)
		res.Tracker.WriteSummary(w, cfg.DurationNs)
		sloSummary(w, res.Tracker, s.obj)
		if cfg.Detail {
			fmt.Fprintln(w)
			res.Tracker.WriteWindows(w, s.obj)
		}
	}
	return nil
}

// measureAtomicRTT measures the unloaded round-trip of one atomic
// fetch-and-increment against node 0's module from node 1 — the reference
// service time the saturation sweep and calibration scale against.
func measureAtomicRTT(nodes int) (int64, error) {
	m := machine.New(ButterflyI(nodes))
	var rtt int64
	m.Spawn("rtt-probe", 1, func(p *sim.Proc) {
		const samples = 64
		t0 := p.LocalNow()
		for i := 0; i < samples; i++ {
			m.Atomic(p, 0)
			p.Sync()
		}
		rtt = (p.LocalNow() - t0) / samples
	})
	if err := m.E.Run(); err != nil {
		return 0, err
	}
	return rtt, nil
}

// E26 "saturate": sweep offered load across the hot-spot counter service
// and chart the knee. The served resource is node 0's memory module (every
// request is one atomic fetch-and-add), so achieved throughput tracks
// offered load up to the module's service capacity and plateaus hard after
// it while latency and queue depth explode — the open-loop curve a closed
// benchmark can never show.
func runSaturate(w io.Writer, quick bool) error {
	base := workload.Default()
	nodes := 32
	base.Sources = 4
	base.DurationNs = 20 * sim.Millisecond
	base.WindowNs = 5 * sim.Millisecond
	mults := []float64{0.25, 0.5, 1, 2, 3, 4.5, 6, 8}
	if quick {
		nodes = 16
		base.Sources = 2
		base.DurationNs = 6 * sim.Millisecond
		base.WindowNs = 2 * sim.Millisecond
		mults = []float64{0.5, 2, 4, 7}
	}
	cfg0, err := effectiveWorkload(base)
	if err != nil {
		return err
	}
	rtt, err := measureAtomicRTT(nodes)
	if err != nil {
		return err
	}
	ref := 1e9 / float64(rtt) // one-outstanding-request rate; capacity exceeds it (pipelining)
	fmt.Fprintf(w, "hot-spot counter service on %d nodes: unloaded atomic RTT %.2fus, reference rate %.0f req/s\n",
		nodes, float64(rtt)/1e3, ref)
	fmt.Fprintf(w, "sweep: pattern=%s seed=%d duration=%.1fms sources=%d\n\n",
		cfg0.Pattern, cfg0.Seed, msf(cfg0.DurationNs), cfg0.Sources)
	fmt.Fprintf(w, "%10s %11s %11s %9s %10s %10s %10s\n",
		"xref", "offered/s", "achieved/s", "ratio", "p50 (us)", "p99 (us)", "max-depth")

	type row struct{ offered, achieved float64 }
	var rows []row
	for _, mult := range mults {
		cfg := cfg0
		cfg.Rate = ref * mult
		res, err := workload.RunHotspotCounter(cfg, workload.CounterOpts{Machine: ButterflyI(nodes)})
		if err != nil {
			return err
		}
		tr := res.Tracker
		off := offeredRate(tr, cfg.DurationNs)
		ach := completionRate(tr)
		ratio := 0.0
		if off > 0 {
			ratio = ach / off
		}
		fmt.Fprintf(w, "%10.2f %11.0f %11.0f %9.3f %10.2f %10.2f %10d\n",
			mult, off, ach, ratio,
			float64(tr.Total.Quantile(0.50))/1e3, float64(tr.Total.Quantile(0.99))/1e3,
			maxDepth(tr))
		rows = append(rows, row{offered: off, achieved: ach})
	}

	knee := rows[0].offered
	for _, r := range rows {
		if r.offered > 0 && r.achieved >= 0.95*r.offered {
			knee = r.offered
		}
	}
	fmt.Fprintf(w, "\nsaturation knee near %.0f req/s (last offered rate with achieved >= 95%% of offered)\n", knee)
	return nil
}

// measureRemoteReadUs measures an unloaded single-word remote read.
func measureRemoteReadUs(nodes int) (float64, error) {
	m := machine.New(ButterflyI(nodes))
	var rtt int64
	m.Spawn("ref-probe", 1, func(p *sim.Proc) {
		const samples = 64
		t0 := p.LocalNow()
		for i := 0; i < samples; i++ {
			m.Read(p, 0, 1)
			p.Sync()
		}
		rtt = (p.LocalNow() - t0) / samples
	})
	if err := m.E.Run(); err != nil {
		return 0, err
	}
	return float64(rtt) / 1e3, nil
}

// E27 "calibrate": hold the simulator to paper-derived expectations with
// explicit tolerances. Two scalar anchors from the paper (remote reference
// latency, small-RPC round trip) plus two measured curves — an M/D/1
// latency curve over the Lynx echo server at three utilizations validated
// against queueing theory applied to the *measured* service time, and the
// hot-spot saturation curve's subcritical-linearity and post-knee-plateau
// properties. A failing check fails the experiment: model drift is loud.
func runCalibrate(w io.Writer, quick bool) error {
	var suite wcal.Suite

	// (1) Remote reference: the paper's headline hardware number.
	remUs, err := measureRemoteReadUs(16)
	if err != nil {
		return err
	}
	suite.Add(wcal.Check{
		Name: "remote-reference", Unit: "us", Measured: remUs, Expected: 4.0, Tol: 0.25,
		Source: "paper §2.1: remote references take about 4us",
	})

	// (2) Unloaded small-RPC round trip over Lynx (client spawn + call +
	// dispatch + handler + reply), against the ~2 ms of Scott & Cox [49].
	echoCfg := workload.Config{
		Pattern: workload.Poisson, Rate: 150, Seed: 3,
		DurationNs: 60 * sim.Millisecond, Sources: 1, Servers: 1,
		WindowNs: 30 * sim.Millisecond,
	}
	if quick {
		echoCfg.DurationNs = 40 * sim.Millisecond
		echoCfg.WindowNs = 20 * sim.Millisecond
	}
	echoRes, err := workload.RunLynxEcho(echoCfg, workload.EchoOpts{
		Machine: ButterflyI(8), EchoFlops: 8, ReplyWords: 16,
	})
	if err != nil {
		return err
	}
	suite.Add(wcal.Check{
		Name: "lynx-rpc-unloaded", Unit: "ms", Measured: msf(echoRes.Tracker.Total.Mean()),
		Expected: 2.0, Tol: 0.5,
		Source: "Scott & Cox [49]: small RPCs complete in roughly two milliseconds",
	})

	// (3) M/D/1 latency curve on a single echo server: measure the service
	// rate under overload, then predict mean latency at three utilizations
	// from queueing theory (mean wait rho*S/(2(1-rho)) over the unloaded
	// baseline) and demand the measured curve track it.
	mdBase := workload.Config{
		Pattern: workload.Poisson, Seed: 5, Sources: 4, Servers: 1,
		Rate: 1, DurationNs: 1, WindowNs: 50 * sim.Millisecond,
	}
	mdOpts := workload.EchoOpts{Machine: ButterflyI(8), EchoFlops: 60, ReplyWords: 8}
	mdRun := func(rate float64, durNs int64) (*workload.Result, error) {
		c := mdBase
		c.Rate, c.DurationNs = rate, durNs
		return workload.RunLynxEcho(c, mdOpts)
	}
	capDur, rhoDur, l0Dur := int64(80*sim.Millisecond), int64(200*sim.Millisecond), int64(150*sim.Millisecond)
	if quick {
		capDur, rhoDur, l0Dur = 50*sim.Millisecond, 100*sim.Millisecond, 80*sim.Millisecond
	}
	capRes, err := mdRun(1500, capDur) // far beyond capacity: drain rate == service rate
	if err != nil {
		return err
	}
	cMeas := completionRate(capRes.Tracker)
	if cMeas <= 0 {
		return fmt.Errorf("calibrate: capacity measurement produced no completions")
	}
	sNs := 1e9 / cMeas
	l0Res, err := mdRun(60, l0Dur)
	if err != nil {
		return err
	}
	l0 := float64(l0Res.Tracker.Total.Mean())
	fmt.Fprintf(w, "m/d/1 inputs: measured capacity %.0f req/s (S=%.3fms), unloaded mean %.3fms\n\n",
		cMeas, sNs/1e6, l0/1e6)
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		res, err := mdRun(rho*cMeas, rhoDur)
		if err != nil {
			return err
		}
		predicted := l0 + rho*sNs/(2*(1-rho))
		suite.Add(wcal.Check{
			Name: fmt.Sprintf("md1-mean-latency rho=%.1f", rho), Unit: "ms",
			Measured: msf(res.Tracker.Total.Mean()), Expected: predicted / 1e6, Tol: 0.35,
			Source: "M/D/1: mean wait rho*S/(2(1-rho)) over the unloaded baseline, S measured",
		})
	}

	// (4) Saturation-curve properties on the hot-spot counter: subcritical
	// linearity (achieved tracks offered well below the knee) and the
	// post-knee plateau (achieved is flat once the module saturates).
	nodes := 24
	satBase := workload.Config{
		Pattern: workload.Poisson, Seed: 9, Sources: 4, Servers: 1,
		Rate: 1, DurationNs: 24 * sim.Millisecond, WindowNs: 6 * sim.Millisecond,
	}
	if quick {
		satBase.DurationNs, satBase.WindowNs = 10*sim.Millisecond, 2500*sim.Microsecond
	}
	rtt, err := measureAtomicRTT(nodes)
	if err != nil {
		return err
	}
	ref := 1e9 / float64(rtt)
	satRun := func(mult float64) (*slo.Tracker, error) {
		c := satBase
		c.Rate = ref * mult
		res, err := workload.RunHotspotCounter(c, workload.CounterOpts{Machine: ButterflyI(nodes)})
		if err != nil {
			return nil, err
		}
		return res.Tracker, nil
	}
	sub, err := satRun(0.5)
	if err != nil {
		return err
	}
	suite.Add(wcal.Check{
		Name: "saturation-subcritical", Unit: "ratio",
		Measured: completionRate(sub) / offeredRate(sub, satBase.DurationNs), Expected: 1.0, Tol: 0.05,
		Source: "open-loop linearity: below the knee, achieved == offered",
	})
	hi1, err := satRun(8)
	if err != nil {
		return err
	}
	hi2, err := satRun(12)
	if err != nil {
		return err
	}
	suite.Add(wcal.Check{
		Name: "saturation-plateau", Unit: "ratio",
		Measured: completionRate(hi2) / completionRate(hi1), Expected: 1.0, Tol: 0.08,
		Source: "past the knee the module serves at capacity regardless of offered load",
	})

	if !suite.WriteReport(w) {
		return fmt.Errorf("calibrate: %d check(s) outside tolerance", len(suite.Failures()))
	}
	return nil
}

// E28 "brownout": the degrade experiment's fault schedules composed with
// sustained traffic. Server nodes die mid-run; routing skips dead servers
// for new requests while in-flight calls eat the timeout, so the SLO
// verdict fails in the outage windows and recovers after — and the tail
// percentiles degrade monotonically with the kill count.
func runBrownout(w io.Writer, quick bool) error {
	base := workload.Default()
	nodes := 24
	base.Rate = 2000
	base.Sources = 4
	base.Servers = 4
	base.DurationNs = 100 * sim.Millisecond
	if quick {
		nodes = 16
		base.Rate = 1200
		base.Sources = 3
		base.Servers = 3
		base.DurationNs = 60 * sim.Millisecond
	}
	cfg, err := effectiveWorkload(base)
	if err != nil {
		return err
	}
	obj := slo.Objective{Name: "echo", P99Ns: 5 * sim.Millisecond, MaxErrRate: 0.01}
	const timeoutNs = 6 * sim.Millisecond

	fmt.Fprintf(w, "lynx echo (%d servers, %.0f req/s %s) with servers killed mid-traffic, call timeout %.0fms\n",
		cfg.Servers, cfg.Rate, cfg.Pattern, msf(timeoutNs))
	fmt.Fprintf(w, "objective: p99<=%.0fms, err<=%.1f%%\n\n", msf(obj.P99Ns), 100*obj.MaxErrRate)
	fmt.Fprintf(w, "%6s %10s %8s %6s %10s %10s  %s\n",
		"kills", "offered/s", "ok/s", "errs", "p50 (ms)", "p99 (ms)", "slo")

	var p99s []int64
	var oneKill *workload.Result
	for kills := 0; kills <= 2; kills++ {
		var fc *fault.Config
		if kills > 0 {
			fc = &fault.Config{Seed: 1}
			for j := 0; j < kills; j++ {
				fc.Failures = append(fc.Failures, fault.NodeFailure{
					// Highest-numbered servers die first (servers sit on
					// nodes 1..Servers), at 35% and 55% of the horizon.
					Node: cfg.Servers - j,
					At:   cfg.DurationNs * int64(35+20*j) / 100,
				})
			}
		}
		res, err := workload.RunLynxEcho(cfg, workload.EchoOpts{
			Machine: ButterflyI(nodes), Faults: fc,
			EchoFlops: 8, ReplyWords: 16, CallTimeoutNs: timeoutNs,
		})
		if err != nil {
			return err
		}
		tr := res.Tracker
		secs := float64(cfg.DurationNs) / 1e9
		fmt.Fprintf(w, "%6d %10.0f %8.0f %6d %10.3f %10.3f  %s\n",
			kills, offeredRate(tr, cfg.DurationNs), float64(tr.Completed-tr.Errors)/secs,
			tr.Errors, msf(tr.Total.Quantile(0.50)), msf(tr.Total.Quantile(0.99)),
			slo.VerdictLine(tr.Verdicts(obj), tr.Windows()))
		p99s = append(p99s, tr.Total.Quantile(0.99))
		if kills == 1 {
			oneKill = res
		}
	}

	fmt.Fprintf(w, "\nwindow timeline with 1 kill:\n")
	oneKill.Tracker.WriteWindows(w, obj)

	monotone := p99s[0] <= p99s[1] && p99s[1] <= p99s[2]
	arc := slo.VerdictLine(oneKill.Tracker.Verdicts(obj), oneKill.Tracker.Windows())
	fmt.Fprintf(w, "\np99 degradation monotone across kills: %v (%.3f -> %.3f -> %.3f ms)\n",
		monotone, msf(p99s[0]), msf(p99s[1]), msf(p99s[2]))
	fmt.Fprintf(w, "slo verdict with 1 kill: %s\n", arc)
	if !monotone {
		return fmt.Errorf("brownout: p99 did not degrade monotonically: %v", p99s)
	}
	if !strings.Contains(arc, "FAIL") || !strings.HasSuffix(arc, "(recovered)") {
		return fmt.Errorf("brownout: expected a failing-then-recovering verdict, got %q", arc)
	}
	return nil
}
