package core

import (
	"fmt"
	"io"

	"butterfly/internal/apps/geometry"
	"butterfly/internal/apps/graphs"
	"butterfly/internal/apps/hough"
	"butterfly/internal/apps/subgraph"
	"butterfly/internal/biff"
	"butterfly/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "darpa",
		Title: "DARPA parallel-architecture benchmark suite (BPR 13)",
		Paper: "seven different benchmarks were developed ... edge finding and zero-crossing detection, connected component labeling, Hough transformation, geometric constructions, visibility calculations, graph matching (subgraph isomorphism), and minimum-cost path",
		Run:   runDARPA,
	})
}

// runDARPA runs one representative configuration of each implemented DARPA
// benchmark at 1 and P processors and prints the speedup table (the study's
// summary form). Visibility calculations are the one benchmark not
// implemented (no algorithmic details survive in the open reports).
func runDARPA(w io.Writer, quick bool) error {
	procs := 32
	scale := 1.0
	if quick {
		procs = 8
		scale = 0.35
	}
	type row struct {
		name     string
		t1, tp   int64
		verified bool
	}
	var rows []row
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}

	// Edge finding + zero crossings (BIFF).
	{
		img := biff.TestImage(n(192), n(192), 13)
		pipeline := []biff.Filter{biff.SobelMag{}, biff.Threshold{T: 60}}
		want := biff.PipelineSequential(img, pipeline...)
		r1, err := biff.Run(img, 1, pipeline...)
		if err != nil {
			return err
		}
		rp, err := biff.Run(img, procs, pipeline...)
		if err != nil {
			return err
		}
		rows = append(rows, row{"edge finding (Sobel)", r1.ElapsedNs, rp.ElapsedNs, biff.Equal(want, rp.Out) == nil})

		zc := []biff.Filter{biff.Smooth(), biff.ZeroCross{}}
		wantZ := biff.PipelineSequential(img, zc...)
		z1, err := biff.Run(img, 1, zc...)
		if err != nil {
			return err
		}
		zp, err := biff.Run(img, procs, zc...)
		if err != nil {
			return err
		}
		rows = append(rows, row{"zero-crossing detection", z1.ElapsedNs, zp.ElapsedNs, biff.Equal(wantZ, zp.Out) == nil})
	}

	// Connected components.
	{
		g := graphs.Random(n(6000), 5, 14)
		ref := graphs.ComponentsRef(g)
		l1, r1, err := graphs.Components(g, 1)
		if err != nil {
			return err
		}
		lp, rp, err := graphs.Components(g, procs)
		if err != nil {
			return err
		}
		rows = append(rows, row{"connected components", r1.ElapsedNs, rp.ElapsedNs,
			graphs.SameComponents(ref, l1) && graphs.SameComponents(ref, lp)})
	}

	// Hough transform.
	{
		im := hough.SyntheticImage(n(128), n(128), 4, 0.08, 15)
		angles := 60
		ref := hough.Reference(im, angles)
		h1, err := hough.Run(hough.Config{Image: im, Angles: angles, Procs: 1, Variant: hough.VariantLocalTables})
		if err != nil {
			return err
		}
		hp, err := hough.Run(hough.Config{Image: im, Angles: angles, Procs: procs, Variant: hough.VariantLocalTables})
		if err != nil {
			return err
		}
		rows = append(rows, row{"Hough transform", h1.ElapsedNs, hp.ElapsedNs, hough.Equal(ref, hp.Votes) == nil})
	}

	// Geometric constructions: convex hull and MST.
	{
		pts := geometry.RandomPoints(n(20000), 16)
		want := geometry.HullSequential(pts)
		_, g1, err := geometry.Hull(pts, 1)
		if err != nil {
			return err
		}
		hp, gp, err := geometry.Hull(pts, procs)
		if err != nil {
			return err
		}
		rows = append(rows, row{"convex hull", g1.ElapsedNs, gp.ElapsedNs, geometry.SameHull(want, hp)})

		edges := geometry.RandomGraph(n(3000), n(20000), 17)
		wantW := geometry.MSTSequential(n(3000), edges)
		w1, m1, err := geometry.MST(n(3000), edges, 1)
		if err != nil {
			return err
		}
		wp, mp, err := geometry.MST(n(3000), edges, procs)
		if err != nil {
			return err
		}
		rows = append(rows, row{"minimal spanning tree", m1.ElapsedNs, mp.ElapsedNs, w1 == wantW && wp == wantW})
	}

	// Graph matching (subgraph isomorphism).
	{
		pattern := subgraph.Cycle(5)
		target := subgraph.Random(n(40), 0.25, 18)
		want := subgraph.CountSequential(pattern, target)
		s1, err := subgraph.CountParallel(pattern, target, 1)
		if err != nil {
			return err
		}
		sp, err := subgraph.CountParallel(pattern, target, procs)
		if err != nil {
			return err
		}
		rows = append(rows, row{"subgraph isomorphism", s1.ElapsedNs, sp.ElapsedNs, s1.Count == want && sp.Count == want})
	}

	// Minimum-cost path.
	{
		g := graphs.Random(n(6000), 5, 19)
		ref := graphs.ShortestPathsRef(g, 0)
		d1, r1, err := graphs.ShortestPaths(g, 0, 1)
		if err != nil {
			return err
		}
		dp, rp, err := graphs.ShortestPaths(g, 0, procs)
		if err != nil {
			return err
		}
		ok := true
		for v := range ref {
			if d1[v] != ref[v] || dp[v] != ref[v] {
				ok = false
				break
			}
		}
		rows = append(rows, row{"minimum-cost path", r1.ElapsedNs, rp.ElapsedNs, ok})
	}

	fmt.Fprintf(w, "%-26s %12s %12s %9s %9s\n", "benchmark", "1 proc (s)", fmt.Sprintf("%d procs (s)", procs), "speedup", "verified")
	for _, r := range rows {
		if !r.verified {
			return fmt.Errorf("darpa: %s produced a wrong answer", r.name)
		}
		fmt.Fprintf(w, "%-26s %12.3f %12.3f %8.1fx %9v\n",
			r.name, sim.Seconds(r.t1), sim.Seconds(r.tp), float64(r.t1)/float64(r.tp), r.verified)
	}
	fmt.Fprintf(w, "\n(visibility calculations: not implemented — no algorithmic details survive in the open reports)\n")
	return nil
}
