package core

import (
	"fmt"
	"strings"
	"testing"

	"butterfly/internal/machine"
)

func TestSpecValidate(t *testing.T) {
	seed := uint64(0)
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" for valid
	}{
		{"valid minimal", Spec{Experiment: "numa"}, ""},
		{"valid full", Spec{Experiment: "numa", Quick: true, Preset: "bplus", Nodes: 16,
			Faults: "seed 7; kill 3 @ 10ms", FaultSeed: &seed, Probe: true, TimeoutMs: 1000, Retries: 2}, ""},
		{"missing experiment", Spec{}, "experiment id is required"},
		{"unknown experiment", Spec{Experiment: "nonesuch"}, "unknown experiment"},
		{"unknown preset", Spec{Experiment: "numa", Preset: "cray"}, "unknown preset"},
		{"negative nodes", Spec{Experiment: "numa", Nodes: -4}, "nodes must be"},
		{"bad faults", Spec{Experiment: "numa", Faults: "frobnicate everything"}, "faults"},
		{"seed without faults", Spec{Experiment: "numa", FaultSeed: &seed}, "no effect without faults"},
		{"negative timeout", Spec{Experiment: "numa", TimeoutMs: -1}, "timeout_ms"},
		{"negative retries", Spec{Experiment: "numa", Retries: -1}, "retries"},
		{"valid partitioned", Spec{Experiment: "pgauss", Partitions: 4}, ""},
		{"negative partitions", Spec{Experiment: "pgauss", Partitions: -1}, "partitions must be"},
		{"partitions on non-partitionable", Spec{Experiment: "numa", Partitions: 2}, "not partitionable"},
		{"partitions with faults", Spec{Experiment: "pgauss", Partitions: 2,
			Faults: "seed 7; drop 0.001"}, "incompatible"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestSpecFaultConfig(t *testing.T) {
	cfg, err := Spec{Experiment: "numa"}.FaultConfig()
	if err != nil || cfg != nil {
		t.Fatalf("no-fault spec: cfg=%v err=%v", cfg, err)
	}
	seed := uint64(99)
	cfg, err = Spec{Experiment: "numa", Faults: "seed 7; drop 0.001", FaultSeed: &seed}.FaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 99 {
		t.Errorf("seed override not applied: %d", cfg.Seed)
	}
	// An explicit override of zero must win over the schedule's own seed —
	// the sentinel bug the pointer exists to avoid.
	zero := uint64(0)
	cfg, err = Spec{Experiment: "numa", Faults: "seed 7; drop 0.001", FaultSeed: &zero}.FaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 0 {
		t.Errorf("explicit zero seed lost: %d", cfg.Seed)
	}
}

func TestSpecConfigTransform(t *testing.T) {
	if tr := (Spec{Experiment: "numa"}).ConfigTransform(); tr != nil {
		t.Error("no-override spec should not transform configs")
	}

	base := machine.DefaultConfig(8)
	base.NoSwitchContention = true

	got := (Spec{Experiment: "numa", Nodes: 32}).ConfigTransform()(base)
	if got.Nodes != 32 {
		t.Errorf("nodes override: got %d", got.Nodes)
	}
	if got.Net.Nodes != 0 {
		t.Error("nodes override must clear Net so machine.New re-derives the topology")
	}

	got = (Spec{Experiment: "numa", Preset: "bplus"}).ConfigTransform()(base)
	if got.MemCycleNs*4 != base.MemCycleNs {
		t.Errorf("preset rebuild: MemCycleNs = %d", got.MemCycleNs)
	}
	if !got.NoSwitchContention {
		t.Error("preset rebuild must preserve the experiment's contention shortcut")
	}

	got = (Spec{Experiment: "numa", Preset: "bfp", Nodes: 64}).ConfigTransform()(base)
	if got.Nodes != 64 {
		t.Errorf("preset+nodes: got %d nodes", got.Nodes)
	}

	// Partitions is raise-only: it retunes machines already built for the
	// partitioned model and must never drag a sequential-model experiment's
	// machines (Partitions == 0) into windowed mode.
	got = (Spec{Experiment: "pgauss", Partitions: 4}).ConfigTransform()(base)
	if got.Partitions != 0 {
		t.Errorf("partitions forced onto a sequential config: got %d", got.Partitions)
	}
	partitioned := base
	partitioned.Partitions = 1
	got = (Spec{Experiment: "pgauss", Partitions: 4}).ConfigTransform()(partitioned)
	if got.Partitions != 4 {
		t.Errorf("partitions not raised: got %d", got.Partitions)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	before := len(Experiments())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("registering a duplicate id did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "duplicate experiment id") {
			t.Fatalf("panic = %v", r)
		}
		// The rejected registration must not have grown the registry.
		if n := len(Experiments()); n != before {
			t.Errorf("registry grew from %d to %d entries", before, n)
		}
	}()
	register(Experiment{ID: "numa", Title: "imposter", Run: nil})
}

func TestRunAllQuickWritesEveryHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var b strings.Builder
	if err := RunAll(&b, true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range Experiments() {
		header := "===== " + e.ID + ": " + e.Title + " ====="
		if !strings.Contains(out, header) {
			t.Errorf("RunAll output missing header for %s", e.ID)
		}
	}
}
