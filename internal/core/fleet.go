package core

// Fleet record types: the durable and wire forms of butterflyd's
// multi-process mode, where one coordinator places jobs on a ring of
// workers by spec content-address. They live in core — like the job
// journal records — so the journal, the HTTP layer, and the fleet
// runtime agree on one vocabulary without import cycles.

// WorkerRecord identifies one fleet worker durably: the coordinator
// journals membership changes (EventWorkerUp / EventWorkerDown) so a
// restarted coordinator knows which workers to probe before any of them
// happens to heartbeat again.
type WorkerRecord struct {
	// ID is the worker's stable name on the ring; placement hashes it, so
	// a worker that restarts under the same ID reclaims the same arcs.
	ID string `json:"id"`
	// URL is the base URL the coordinator (and ring siblings) reach the
	// worker's job API on.
	URL string `json:"url"`
}

// JoinRequest is a worker announcing itself to the coordinator — sent on
// startup and implicitly on every heartbeat, so a coordinator that lost
// its memory (or never had it) re-learns the fleet from the traffic.
type JoinRequest struct {
	Worker WorkerRecord `json:"worker"`
}

// HeartbeatRequest is a worker's periodic liveness report, carrying the
// counters the coordinator aggregates into fleet metrics.
type HeartbeatRequest struct {
	Worker WorkerRecord `json:"worker"`
	// PeerHits counts jobs this worker resolved from a ring sibling's
	// cache instead of simulating.
	PeerHits uint64 `json:"peer_hits"`
	// Simulated counts jobs this worker actually executed.
	Simulated uint64 `json:"simulated"`
}

// FleetView is the coordinator's answer to joins and heartbeats: the
// current live membership, from which every worker derives the same ring
// the coordinator places by.
type FleetView struct {
	Workers []WorkerRecord `json:"workers"`
}

// WorkerHealth is one worker's row in the coordinator's fleet metrics.
type WorkerHealth struct {
	ID             string `json:"id"`
	URL            string `json:"url"`
	Alive          bool   `json:"alive"`
	HeartbeatAgeMs int64  `json:"heartbeat_age_ms"`
	PeerHits       uint64 `json:"peer_hits"`
	Simulated      uint64 `json:"simulated"`
}

// FleetMetrics is the fleet block of a coordinator's /metrics document.
type FleetMetrics struct {
	Role           string         `json:"role"`
	LiveWorkers    int            `json:"live_workers"`
	KnownWorkers   int            `json:"known_workers"`
	ReassignedJobs uint64         `json:"reassigned_jobs"`
	PeerHits       uint64         `json:"peer_hits"`
	Simulated      uint64         `json:"simulated"`
	MaxBeatAgeMs   int64          `json:"max_heartbeat_age_ms"`
	Workers        []WorkerHealth `json:"workers,omitempty"`
}

// WorkerMetrics is the fleet block of a worker's /metrics document.
type WorkerMetrics struct {
	Role        string `json:"role"`
	ID          string `json:"id"`
	Coordinator string `json:"coordinator"`
	RingSize    int    `json:"ring_size"`
	PeerHits    uint64 `json:"peer_hits"`
	Simulated   uint64 `json:"simulated"`
	// LastAckAgeMs is how stale the worker's view of the fleet is: time
	// since the coordinator last acknowledged a heartbeat (-1 before the
	// first ack).
	LastAckAgeMs int64 `json:"last_ack_age_ms"`
}
