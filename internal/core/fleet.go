package core

// Fleet record types: the durable and wire forms of butterflyd's
// multi-process mode, where one coordinator places jobs on a ring of
// workers by spec content-address. They live in core — like the job
// journal records — so the journal, the HTTP layer, and the fleet
// runtime agree on one vocabulary without import cycles.

// WorkerRecord identifies one fleet worker durably: the coordinator
// journals membership changes (EventWorkerUp / EventWorkerDown) so a
// restarted coordinator knows which workers to probe before any of them
// happens to heartbeat again.
type WorkerRecord struct {
	// ID is the worker's stable name on the ring; placement hashes it, so
	// a worker that restarts under the same ID reclaims the same arcs.
	ID string `json:"id"`
	// URL is the base URL the coordinator (and ring siblings) reach the
	// worker's job API on.
	URL string `json:"url"`
}

// JoinRequest is a worker announcing itself to the coordinator — sent on
// startup and implicitly on every heartbeat, so a coordinator that lost
// its memory (or never had it) re-learns the fleet from the traffic.
type JoinRequest struct {
	Worker WorkerRecord `json:"worker"`
}

// HeartbeatRequest is a worker's periodic liveness report, carrying the
// counters the coordinator aggregates into fleet metrics.
type HeartbeatRequest struct {
	Worker WorkerRecord `json:"worker"`
	// PeerHits counts jobs this worker resolved from a ring sibling's
	// cache instead of simulating.
	PeerHits uint64 `json:"peer_hits"`
	// Simulated counts jobs this worker actually executed.
	Simulated uint64 `json:"simulated"`
}

// LeaveRequest is a worker's explicit deregistration on planned shutdown
// (SIGTERM): the coordinator downs it immediately and quietly, instead of
// reassigning its work when the heartbeat deadline expires.
type LeaveRequest struct {
	Worker WorkerRecord `json:"worker"`
}

// FleetView is the coordinator's answer to joins and heartbeats: the
// current live membership, from which every worker derives the same ring
// the coordinator places by.
type FleetView struct {
	Workers []WorkerRecord `json:"workers"`
	// Epoch is the answering coordinator's generation. Workers adopt the
	// highest epoch they have seen and reject dispatches below it.
	Epoch uint64 `json:"epoch,omitempty"`
	// Coordinators lists the coordinator endpoints a worker may heartbeat,
	// the active primary first, then known standbys — how workers learn
	// where to fail over before the primary dies.
	Coordinators []string `json:"coordinators,omitempty"`
}

// ReplicaPullRequest is a standby asking the primary for journal records it
// has not yet replicated. AfterRec doubles as the acknowledgement: the
// primary knows everything up to and including AfterRec is durable on this
// follower, which is what the replication-lag gauge measures.
type ReplicaPullRequest struct {
	FollowerID  string `json:"follower_id"`
	FollowerURL string `json:"follower_url,omitempty"`
	AfterRec    int64  `json:"after_rec"`
	// FullState forces a snapshot transfer (set after a gap — e.g. the
	// follower's log was torn and truncated below the primary's tail).
	FullState bool `json:"full_state,omitempty"`
}

// ReplicaPullResponse carries either the next batch of journal records or,
// when the follower is too far behind the primary's in-memory tail, a full
// state snapshot to install before streaming resumes.
type ReplicaPullResponse struct {
	Epoch   uint64          `json:"epoch"`
	LastRec int64           `json:"last_rec"`
	Records []JournalRecord `json:"records,omitempty"`
	State   *ReplicaState   `json:"state,omitempty"`
}

// ReplicaState is a full journal state snapshot on the wire — the same
// shape the journal compacts to disk, used to bootstrap a follower that
// joined (or fell) too far behind the record stream.
type ReplicaState struct {
	Schema  string         `json:"schema"`
	Rec     int64          `json:"rec"`
	Seq     int            `json:"seq"`
	Epoch   uint64         `json:"epoch,omitempty"`
	Jobs    []JobRecord    `json:"jobs"`
	Workers []WorkerRecord `json:"workers,omitempty"`
	Sweeps  []SweepRecord  `json:"sweeps,omitempty"`
}

// FollowerHealth is one standby's row in the primary's replication metrics.
type FollowerHealth struct {
	ID            string `json:"id"`
	URL           string `json:"url,omitempty"`
	AckedRec      int64  `json:"acked_rec"`
	LagRecs       int64  `json:"lag_recs"`
	LastPullAgeMs int64  `json:"last_pull_age_ms"`
}

// WorkerHealth is one worker's row in the coordinator's fleet metrics.
type WorkerHealth struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	// Draining marks a planned departure in progress: alive for in-flight
	// work, excluded from new placements.
	Draining       bool   `json:"draining,omitempty"`
	HeartbeatAgeMs int64  `json:"heartbeat_age_ms"`
	PeerHits       uint64 `json:"peer_hits"`
	Simulated      uint64 `json:"simulated"`
}

// FleetMetrics is the fleet block of a coordinator's /metrics document.
type FleetMetrics struct {
	Role           string `json:"role"`
	Epoch          uint64 `json:"epoch"`
	Takeovers      uint64 `json:"takeovers"`
	LiveWorkers    int    `json:"live_workers"`
	KnownWorkers   int    `json:"known_workers"`
	ReassignedJobs uint64 `json:"reassigned_jobs"`
	PeerHits       uint64 `json:"peer_hits"`
	Simulated      uint64 `json:"simulated"`
	MaxBeatAgeMs   int64  `json:"max_heartbeat_age_ms"`
	// ReplicationLagRecs is the worst follower lag in journal records
	// (primary's last record minus the follower's acked record).
	ReplicationLagRecs int64            `json:"replication_lag_recs"`
	Followers          []FollowerHealth `json:"followers,omitempty"`
	Workers            []WorkerHealth   `json:"workers,omitempty"`
}

// StandbyMetrics is the fleet block of a not-yet-promoted standby's
// /metrics (and /replica/status) document.
type StandbyMetrics struct {
	Role    string `json:"role"`
	Primary string `json:"primary"`
	Epoch   uint64 `json:"epoch"`
	// AckedRec is the last journal record durably replicated here.
	AckedRec int64 `json:"acked_rec"`
	// LastSyncAgeMs is time since the last successful pull (-1 before the
	// first).
	LastSyncAgeMs int64 `json:"last_sync_age_ms"`
}

// WorkerMetrics is the fleet block of a worker's /metrics document.
type WorkerMetrics struct {
	Role        string `json:"role"`
	ID          string `json:"id"`
	Coordinator string `json:"coordinator"`
	// Coordinators is the failover list learned from heartbeat acks.
	Coordinators []string `json:"coordinators,omitempty"`
	// Epoch is the highest coordinator generation this worker has seen;
	// dispatches stamped below it are rejected.
	Epoch     uint64 `json:"epoch"`
	RingSize  int    `json:"ring_size"`
	PeerHits  uint64 `json:"peer_hits"`
	Simulated uint64 `json:"simulated"`
	// LastAckAgeMs is how stale the worker's view of the fleet is: time
	// since the coordinator last acknowledged a heartbeat (-1 before the
	// first ack).
	LastAckAgeMs int64 `json:"last_ack_age_ms"`
}
