package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestPresets(t *testing.T) {
	b1 := ButterflyI(128)
	if b1.Nodes != 128 || b1.FlopNs < 10_000 {
		t.Errorf("ButterflyI = %+v", b1)
	}
	fp := ButterflyFP(16)
	if fp.FlopNs >= b1.FlopNs {
		t.Error("FP upgrade not faster")
	}
	plus := ButterflyPlus(64)
	// §4.1: local references improved 4x, remote only 2x.
	if plus.MemCycleNs*4 != b1.MemCycleNs {
		t.Errorf("Plus memory cycle = %d", plus.MemCycleNs)
	}
	if plus.PNCOverheadNs*2 != b1.PNCOverheadNs {
		t.Errorf("Plus PNC overhead = %d", plus.PNCOverheadNs)
	}
}

func TestBoot(t *testing.T) {
	m, os := Boot(ButterflyI(4))
	if m == nil || os == nil || os.M != m {
		t.Fatal("Boot wiring wrong")
	}
	if m.N() != 4 {
		t.Errorf("nodes = %d", m.N())
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "numa", "hough", "spread", "hotspot", "switch", "prims", "darpa",
		"crowd", "alloc", "replay", "bridge", "connect", "speedups", "fig6",
		"sarcache", "models", "vision", "rpc", "psyche", "search", "pedagogy",
		"degrade", "service", "saturate", "calibrate", "brownout", "pgauss",
		"phot", "streamnuma", "combine",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Error("bogus lookup succeeded")
	}
}

func TestExperimentMetadata(t *testing.T) {
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
	}
}

// TestEveryExperimentQuick runs every registered experiment at reduced scale
// — the whole-repo integration test.
func TestEveryExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunAllStopsOnError(t *testing.T) {
	// RunAll with a discarding writer must succeed end to end (quick).
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	if err := RunAll(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClaimsHold(t *testing.T) {
	// A few qualitative paper claims must hold even at quick scale.
	var buf bytes.Buffer
	e, _ := Lookup("numa")
	if err := e.Run(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "remote/local ratio") {
		t.Errorf("numa output malformed:\n%s", out)
	}

	buf.Reset()
	e, _ = Lookup("fig6")
	if err := e.Run(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deadlock reproduced") {
		t.Error("fig6 did not reproduce the deadlock")
	}
}
