package replay

import (
	"fmt"
	"sort"
	"strings"
)

// Moviola is the graphical execution browser built on Instant Replay logs
// (§3.3): it presents the partial order of events in a parallel program at
// arbitrary levels of detail, and has been used to discover performance
// bottlenecks and message-ordering bugs (Figure 6 shows a deadlock in an
// odd-even merge sort). This file builds the event graph; cmd/moviola
// renders it.

// GraphEvent is one node of the partial-order graph.
type GraphEvent struct {
	Index int // position in the global log
	Entry Entry
}

// Graph is the partial order of a recorded execution: program-order edges
// chain each process's events; object-order edges chain the accesses to each
// shared object.
type Graph struct {
	Events []GraphEvent
	// ProgramEdges[i] lists successor event indices of event i within the
	// same process.
	ProgramEdges map[int][]int
	// ObjectEdges[i] lists successor event indices of event i on the same
	// object.
	ObjectEdges map[int][]int
	// Procs lists process names in first-appearance order.
	Procs []string
}

// BuildGraph constructs the partial-order graph from a recorded log.
func BuildGraph(log []Entry) *Graph {
	g := &Graph{
		ProgramEdges: map[int][]int{},
		ObjectEdges:  map[int][]int{},
	}
	lastByProc := map[string]int{}
	lastByObj := map[int]int{}
	seen := map[string]bool{}
	for i, e := range log {
		g.Events = append(g.Events, GraphEvent{Index: i, Entry: e})
		if !seen[e.Proc] {
			seen[e.Proc] = true
			g.Procs = append(g.Procs, e.Proc)
		}
		if j, ok := lastByProc[e.Proc]; ok {
			g.ProgramEdges[j] = append(g.ProgramEdges[j], i)
		}
		lastByProc[e.Proc] = i
		if j, ok := lastByObj[e.Obj]; ok {
			g.ObjectEdges[j] = append(g.ObjectEdges[j], i)
		}
		lastByObj[e.Obj] = i
	}
	return g
}

// HappensBefore reports whether event a precedes event b in the partial
// order (reachability over program and object edges).
func (g *Graph) HappensBefore(a, b int) bool {
	if a == b {
		return false
	}
	seen := make([]bool, len(g.Events))
	stack := []int{a}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x == b {
			return true
		}
		if x >= len(seen) || seen[x] {
			continue
		}
		seen[x] = true
		stack = append(stack, g.ProgramEdges[x]...)
		stack = append(stack, g.ObjectEdges[x]...)
	}
	return false
}

// Concurrent reports whether two events are unordered in the partial order.
func (g *Graph) Concurrent(a, b int) bool {
	return !g.HappensBefore(a, b) && !g.HappensBefore(b, a)
}

// RenderASCII draws the partial order as per-process timelines with one
// column per process and one row per event, in global (logged) order —
// Moviola's zoomed-out view.
func (g *Graph) RenderASCII() string {
	if len(g.Events) == 0 {
		return "(empty execution)\n"
	}
	col := map[string]int{}
	for i, p := range g.Procs {
		col[p] = i
	}
	var b strings.Builder
	width := 14
	for _, p := range g.Procs {
		fmt.Fprintf(&b, "%-*s", width, p)
	}
	b.WriteString("\n")
	for _, ev := range g.Events {
		c := col[ev.Entry.Proc]
		for i := range g.Procs {
			if i == c {
				k := "r"
				if ev.Entry.Write {
					k = "W"
				}
				cell := fmt.Sprintf("%s(obj%d,v%d)", k, ev.Entry.Obj, ev.Entry.Version)
				fmt.Fprintf(&b, "%-*s", width, cell)
			} else {
				fmt.Fprintf(&b, "%-*s", width, "|")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderDOT emits the graph in Graphviz DOT form for offline viewing.
func (g *Graph) RenderDOT() string {
	var b strings.Builder
	b.WriteString("digraph moviola {\n  rankdir=TB;\n")
	for i, ev := range g.Events {
		shape := "ellipse"
		if ev.Entry.Write {
			shape = "box"
		}
		fmt.Fprintf(&b, "  e%d [label=%q shape=%s];\n", i, ev.Entry.String(), shape)
	}
	emit := func(edges map[int][]int, style string) {
		keys := make([]int, 0, len(edges))
		for k := range edges {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			for _, v := range edges[k] {
				fmt.Fprintf(&b, "  e%d -> e%d [style=%s];\n", k, v, style)
			}
		}
	}
	emit(g.ProgramEdges, "solid")
	emit(g.ObjectEdges, "dashed")
	b.WriteString("}\n")
	return b.String()
}
