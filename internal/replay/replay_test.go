package replay

import (
	"strings"
	"testing"
	"testing/quick"

	"butterfly/internal/chrysalis"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
)

func newOS(t *testing.T, nodes int) *chrysalis.OS {
	t.Helper()
	return chrysalis.New(machine.New(machine.DefaultConfig(nodes)))
}

// racyProgram runs nProcs workers that each append their ID to a shared
// slice under a monitored write, with per-worker delays controlling the
// natural interleaving. It returns the observed append order and the log.
func racyProgram(t *testing.T, mon *Monitor, os *chrysalis.OS, delays []int64) []int {
	t.Helper()
	obj := mon.NewObject("list", 0)
	var order []int
	for i := range delays {
		i := i
		os.MakeProcess(nil, nameOf(i), i%os.M.N(), 16, func(self *chrysalis.Process) {
			for rep := 0; rep < 3; rep++ {
				self.P.Advance(delays[i])
				obj.Write(self.P, func() {
					order = append(order, i)
				})
			}
		})
	}
	if err := os.M.E.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return order
}

func nameOf(i int) string {
	return "worker" + string(rune('A'+i))
}

func TestRecordCapturesOrder(t *testing.T) {
	os := newOS(t, 4)
	mon := NewMonitor(os, ModeRecord)
	order := racyProgram(t, mon, os, []int64{300, 100, 200})
	log := mon.Log()
	if len(log) != 9 {
		t.Fatalf("log has %d entries, want 9", len(log))
	}
	// Versions in the log must be strictly increasing (single object, all
	// writes).
	for i, e := range log {
		if e.Version != uint64(i) || !e.Write {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
	// First writer is the one with the smallest delay.
	if order[0] != 1 {
		t.Errorf("first writer = %d, want 1", order[0])
	}
}

func TestReplayForcesRecordedOrder(t *testing.T) {
	// Record with one set of delays, replay the log against a program with
	// *different* delays: the recorded order must win anyway.
	os1 := newOS(t, 4)
	mon1 := NewMonitor(os1, ModeRecord)
	recorded := racyProgram(t, mon1, os1, []int64{300, 100, 200})

	os2 := newOS(t, 4)
	mon2 := NewReplayMonitor(os2, mon1.Log())
	replayed := racyProgram(t, mon2, os2, []int64{5, 900, 40}) // very different timing

	if len(replayed) != len(recorded) {
		t.Fatalf("lengths differ: %d vs %d", len(replayed), len(recorded))
	}
	for i := range recorded {
		if replayed[i] != recorded[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, replayed, recorded)
		}
	}
}

func TestReplayPropertyRandomDelays(t *testing.T) {
	// Property: for arbitrary delay vectors, replaying under different
	// delays reproduces the recorded write order.
	check := func(d1a, d1b, d1c, d2a, d2b, d2c uint16) bool {
		delays1 := []int64{int64(d1a) + 1, int64(d1b) + 1, int64(d1c) + 1}
		delays2 := []int64{int64(d2a) + 1, int64(d2b) + 1, int64(d2c) + 1}
		os1 := newOS(t, 4)
		mon1 := NewMonitor(os1, ModeRecord)
		rec := racyProgram(t, mon1, os1, delays1)
		os2 := newOS(t, 4)
		mon2 := NewReplayMonitor(os2, mon1.Log())
		rep := racyProgram(t, mon2, os2, delays2)
		if len(rec) != len(rep) {
			return false
		}
		for i := range rec {
			if rec[i] != rep[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReadersAndWritersCREW(t *testing.T) {
	// A writer must wait in replay until the recorded number of readers
	// have seen the version it overwrites.
	os1 := newOS(t, 4)
	mon1 := NewMonitor(os1, ModeRecord)
	obj1 := mon1.NewObject("x", 0)
	value := 0
	var readA, readB int
	os1.MakeProcess(nil, "readerA", 1, 16, func(self *chrysalis.Process) {
		self.P.Advance(100)
		obj1.Read(self.P, func() { readA = value })
	})
	os1.MakeProcess(nil, "readerB", 2, 16, func(self *chrysalis.Process) {
		self.P.Advance(200)
		obj1.Read(self.P, func() { readB = value })
	})
	os1.MakeProcess(nil, "writer", 3, 16, func(self *chrysalis.Process) {
		self.P.Advance(50 * sim.Millisecond)
		obj1.Write(self.P, func() { value = 9 })
	})
	if err := os1.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if readA != 0 || readB != 0 {
		t.Fatalf("readers saw the write during record: %d %d", readA, readB)
	}

	// Replay with the writer arriving FIRST; it must still wait for both
	// readers.
	os2 := newOS(t, 4)
	mon2 := NewReplayMonitor(os2, mon1.Log())
	obj2 := mon2.NewObject("x", 0)
	value = 0
	readA, readB = -1, -1
	os2.MakeProcess(nil, "readerA", 1, 16, func(self *chrysalis.Process) {
		self.P.Advance(80 * sim.Millisecond)
		obj2.Read(self.P, func() { readA = value })
	})
	os2.MakeProcess(nil, "readerB", 2, 16, func(self *chrysalis.Process) {
		self.P.Advance(90 * sim.Millisecond)
		obj2.Read(self.P, func() { readB = value })
	})
	os2.MakeProcess(nil, "writer", 3, 16, func(self *chrysalis.Process) {
		obj2.Write(self.P, func() { value = 9 }) // arrives immediately
	})
	if err := os2.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if readA != 0 || readB != 0 {
		t.Errorf("replay let the writer jump the readers: %d %d", readA, readB)
	}
}

func TestReplayDivergencePanics(t *testing.T) {
	os1 := newOS(t, 2)
	mon1 := NewMonitor(os1, ModeRecord)
	obj1 := mon1.NewObject("x", 0)
	os1.MakeProcess(nil, "p", 0, 16, func(self *chrysalis.Process) {
		obj1.Write(self.P, func() {})
	})
	if err := os1.M.E.Run(); err != nil {
		t.Fatal(err)
	}

	os2 := newOS(t, 2)
	mon2 := NewReplayMonitor(os2, mon1.Log())
	obj2 := mon2.NewObject("x", 0)
	panicked := false
	os2.MakeProcess(nil, "p", 0, 16, func(self *chrysalis.Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
			self.P.Exit()
		}()
		obj2.Read(self.P, func() {}) // recorded a write, attempting a read
	})
	_ = os2.M.E.Run()
	if !panicked {
		t.Error("divergent replay did not panic")
	}
}

func TestMonitoringOverheadFewPercent(t *testing.T) {
	// E10: record-mode overhead stays within a few percent for typical
	// programs (whose inter-access computation dominates).
	elapsed := func(mode Mode) int64 {
		os := newOS(t, 8)
		mon := NewMonitor(os, mode)
		obj := mon.NewObject("work", 0)
		for i := 0; i < 8; i++ {
			os.MakeProcess(nil, nameOf(i), i, 16, func(self *chrysalis.Process) {
				for rep := 0; rep < 20; rep++ {
					os.M.IntOps(self.P, 2000) // ~1 ms of real work
					obj.Write(self.P, func() {})
				}
			})
		}
		if err := os.M.E.Run(); err != nil {
			t.Fatal(err)
		}
		return os.M.E.Now()
	}
	off := elapsed(ModeOff)
	rec := elapsed(ModeRecord)
	overhead := float64(rec-off) / float64(off)
	if overhead > 0.05 {
		t.Errorf("monitoring overhead %.1f%%, want a few percent", overhead*100)
	}
	if overhead <= 0 {
		t.Errorf("monitoring was free (%.3f%%); the cost model is broken", overhead*100)
	}
}

func TestOffModeNoLog(t *testing.T) {
	os := newOS(t, 2)
	mon := NewMonitor(os, ModeOff)
	obj := mon.NewObject("x", 0)
	os.MakeProcess(nil, "p", 0, 16, func(self *chrysalis.Process) {
		obj.Write(self.P, func() {})
		obj.Read(self.P, func() {})
	})
	if err := os.M.E.Run(); err != nil {
		t.Fatal(err)
	}
	if len(mon.Log()) != 0 {
		t.Error("ModeOff produced log entries")
	}
	if obj.Version() != 0 {
		t.Error("ModeOff advanced versions")
	}
}

func TestNewMonitorRejectsReplayMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMonitor(ModeReplay) did not panic")
		}
	}()
	NewMonitor(nil, ModeReplay)
}

func TestGraphConstruction(t *testing.T) {
	log := []Entry{
		{Proc: "a", Obj: 0, Version: 0, Write: true},
		{Proc: "b", Obj: 0, Version: 1},
		{Proc: "b", Obj: 1, Version: 0, Write: true},
		{Proc: "a", Obj: 1, Version: 1},
	}
	g := BuildGraph(log)
	if len(g.Events) != 4 || len(g.Procs) != 2 {
		t.Fatalf("graph = %+v", g)
	}
	// a's write (0) precedes b's read (1) via the object edge.
	if !g.HappensBefore(0, 1) {
		t.Error("0 !< 1")
	}
	// and transitively a's write (0) precedes a's read (3) via b.
	if !g.HappensBefore(0, 3) {
		t.Error("0 !< 3")
	}
	if g.HappensBefore(3, 0) {
		t.Error("3 < 0")
	}
	if g.Concurrent(0, 1) {
		t.Error("0 and 1 reported concurrent")
	}
}

func TestGraphConcurrent(t *testing.T) {
	log := []Entry{
		{Proc: "a", Obj: 0, Version: 0, Write: true},
		{Proc: "b", Obj: 1, Version: 0, Write: true},
	}
	g := BuildGraph(log)
	if !g.Concurrent(0, 1) {
		t.Error("independent events not concurrent")
	}
}

func TestRenderASCII(t *testing.T) {
	log := []Entry{
		{Proc: "sorter0", Obj: 0, Version: 0, Write: true},
		{Proc: "sorter1", Obj: 0, Version: 1},
	}
	out := BuildGraph(log).RenderASCII()
	if !strings.Contains(out, "sorter0") || !strings.Contains(out, "W(obj0,v0)") {
		t.Errorf("ASCII render missing content:\n%s", out)
	}
	if BuildGraph(nil).RenderASCII() == "" {
		t.Error("empty render empty")
	}
}

func TestRenderDOT(t *testing.T) {
	log := []Entry{
		{Proc: "a", Obj: 0, Version: 0, Write: true},
		{Proc: "b", Obj: 0, Version: 1},
	}
	dot := BuildGraph(log).RenderDOT()
	for _, want := range []string{"digraph moviola", "e0 -> e1", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
