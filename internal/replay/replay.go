// Package replay implements Instant Replay (LeBlanc & Mellor-Crummey, IEEE
// ToC 1987; §3.3 of the paper): deterministic record/replay for parallel
// programs. During recording, each access to a shared object logs the
// object's version (writers also log how many readers saw the version they
// overwrite); during replay, accesses wait until the object reaches the
// recorded version, forcing the original relative order of significant
// events without saving any of the data actually communicated.
//
// The technique assumes "a communication model based on shared objects,
// which are used to implement both shared memory and message passing", so
// one mechanism covers every Rochester package. No central bottleneck is
// introduced: each object carries its own version state, and there is no
// need for synchronized clocks or a globally-consistent logical time.
package replay

import (
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/sim"
)

// Mode selects the monitor's behaviour.
type Mode int

// Monitor modes.
const (
	// ModeOff disables monitoring (no overhead).
	ModeOff Mode = iota
	// ModeRecord logs the partial order of accesses as they occur.
	ModeRecord
	// ModeReplay forces accesses to follow a previously recorded order.
	ModeReplay
)

// Entry is one recorded access.
type Entry struct {
	// Proc is the accessing process's name (names must be stable across
	// record and replay runs).
	Proc string
	// Obj is the shared object's ID.
	Obj int
	// Version is the object version observed (readers) or overwritten
	// (writers).
	Version uint64
	// Readers is, for writes, the number of readers of the overwritten
	// version.
	Readers uint64
	// Write distinguishes writer entries.
	Write bool
	// Time is the virtual time of the access in the recording run.
	Time int64
}

// String renders an entry compactly.
func (e Entry) String() string {
	k := "R"
	if e.Write {
		k = "W"
	}
	return fmt.Sprintf("%s %s obj%d v%d", e.Proc, k, e.Obj, e.Version)
}

// Monitor coordinates a set of instrumented shared objects.
type Monitor struct {
	mode Mode
	os   *chrysalis.OS

	objects []*Object
	log     []Entry
	// cursor[name] is the replay position within entriesFor(name).
	perProc map[string][]Entry
	cursor  map[string]int
}

// NewMonitor creates a monitor in ModeOff or ModeRecord.
func NewMonitor(os *chrysalis.OS, mode Mode) *Monitor {
	if mode == ModeReplay {
		panic("replay: use NewReplayMonitor for replay mode")
	}
	return &Monitor{mode: mode, os: os}
}

// NewReplayMonitor creates a monitor that will force the given recorded
// order. Objects must be re-created in the same order as in the recording
// run (IDs must line up).
func NewReplayMonitor(os *chrysalis.OS, log []Entry) *Monitor {
	m := &Monitor{mode: ModeReplay, os: os, perProc: map[string][]Entry{}, cursor: map[string]int{}}
	for _, e := range log {
		m.perProc[e.Proc] = append(m.perProc[e.Proc], e)
	}
	return m
}

// Mode returns the monitor's mode.
func (m *Monitor) Mode() Mode { return m.mode }

// Log returns the recorded access log (meaningful after a record run). The
// slice is shared; callers must not modify it.
func (m *Monitor) Log() []Entry { return m.log }

// Object is an instrumented shared object. Protocol: concurrent readers,
// exclusive writers (CREW), with the version/reader-count bookkeeping of the
// Instant Replay paper.
type Object struct {
	ID   int
	Name string
	// Node is where the object (and its version word) lives.
	Node int

	mon              *Monitor
	version          uint64
	readersOfVersion uint64
	waiters          *sim.WaitQueue
}

// NewObject registers a shared object homed on a node. Creation order
// defines IDs and must match between record and replay runs.
func (m *Monitor) NewObject(name string, node int) *Object {
	o := &Object{
		ID:      len(m.objects),
		Name:    name,
		Node:    node,
		mon:     m,
		waiters: sim.NewWaitQueue(fmt.Sprintf("replay object %s", name)),
	}
	m.objects = append(m.objects, o)
	return o
}

// next pops the next recorded entry for proc p, validating it targets o.
func (m *Monitor) next(p *sim.Proc, o *Object, write bool) Entry {
	es := m.perProc[p.Name]
	c := m.cursor[p.Name]
	if c >= len(es) {
		panic(fmt.Sprintf("replay: process %q performs more accesses than recorded", p.Name))
	}
	e := es[c]
	if e.Obj != o.ID || e.Write != write {
		panic(fmt.Sprintf("replay: divergence at %q access %d: recorded %v, attempted %s on obj%d",
			p.Name, c, e, map[bool]string{true: "W", false: "R"}[write], o.ID))
	}
	m.cursor[p.Name] = c + 1
	return e
}

// stateChanged wakes every process waiting for this object to advance.
func (o *Object) stateChanged() {
	o.waiters.WakeAll(o.mon.os.M.E, 0)
}

// chargeMonitor accounts for the version-word maintenance: one atomic
// reference to the object's home node. "The overhead of monitoring can be
// kept to within a few percent of execution time for typical programs."
func (o *Object) chargeMonitor(p *sim.Proc) {
	o.mon.os.M.Atomic(p, o.Node)
	// Flush the lazy reference charge: the monitor observes (and stamps)
	// object versions at the reference's completion time.
	p.Sync()
}

// Read performs body as a monitored read of the object.
func (o *Object) Read(p *sim.Proc, body func()) {
	switch o.mon.mode {
	case ModeOff:
		body()
	case ModeRecord:
		o.chargeMonitor(p)
		o.mon.log = append(o.mon.log, Entry{
			Proc: p.Name, Obj: o.ID, Version: o.version, Time: o.mon.os.M.E.Now(),
		})
		o.readersOfVersion++
		body()
	case ModeReplay:
		e := o.mon.next(p, o, false)
		o.chargeMonitor(p)
		for o.version != e.Version {
			o.waiters.Wait(p)
		}
		o.readersOfVersion++
		o.stateChanged() // a writer may be waiting for this reader count
		body()
	}
}

// Write performs body as a monitored exclusive write of the object.
func (o *Object) Write(p *sim.Proc, body func()) {
	switch o.mon.mode {
	case ModeOff:
		body()
	case ModeRecord:
		o.chargeMonitor(p)
		o.mon.log = append(o.mon.log, Entry{
			Proc: p.Name, Obj: o.ID, Version: o.version, Readers: o.readersOfVersion,
			Write: true, Time: o.mon.os.M.E.Now(),
		})
		body()
		o.version++
		o.readersOfVersion = 0
	case ModeReplay:
		e := o.mon.next(p, o, true)
		o.chargeMonitor(p)
		for o.version != e.Version || o.readersOfVersion != e.Readers {
			o.waiters.Wait(p)
		}
		body()
		o.version++
		o.readersOfVersion = 0
		o.stateChanged()
	}
}

// Version returns the object's current version (tests and tools).
func (o *Object) Version() uint64 { return o.version }
