package rpcbench

import (
	"testing"

	"butterfly/internal/sim"
)

func TestAllImplementationsCorrect(t *testing.T) {
	for _, impl := range All() {
		r, err := Run(impl, 20)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if err := Verify(r); err != nil {
			t.Error(err)
		}
		if r.RoundTripNs <= 0 {
			t.Errorf("%s: non-positive round trip", impl)
		}
	}
}

func TestCostOrdering(t *testing.T) {
	// The study's point: the primitive choice dictates the cost. Polling
	// shared memory is cheapest; the language runtime is dearest; the
	// scheduler-based primitives sit in between.
	times := map[Impl]int64{}
	for _, impl := range All() {
		r, err := Run(impl, 30)
		if err != nil {
			t.Fatal(err)
		}
		times[impl] = r.RoundTripNs
	}
	if !(times[SpinMailbox] < times[EventPair]) {
		t.Errorf("spin (%d) should beat events (%d)", times[SpinMailbox], times[EventPair])
	}
	if !(times[EventPair] <= times[DualQueuePair]) {
		t.Errorf("events (%d) should not cost more than dual queues (%d)", times[EventPair], times[DualQueuePair])
	}
	if !(times[DualQueuePair] < times[DualQueueBlk]) {
		t.Errorf("block arguments (%d) must add cost over plain (%d)", times[DualQueueBlk], times[DualQueuePair])
	}
	if !(times[DualQueueBlk] < times[SMPMessage]) {
		t.Errorf("SMP (%d) should cost more than raw dual queues (%d)", times[SMPMessage], times[DualQueueBlk])
	}
	if !(times[SMPMessage] < times[LynxRPC]) {
		t.Errorf("Lynx (%d) should cost more than SMP (%d)", times[LynxRPC], times[SMPMessage])
	}
}

func TestCostsInPublishedRange(t *testing.T) {
	// §4.2: all general communication schemes cost the same order as the
	// Chrysalis primitives — tens of microseconds to a few milliseconds.
	for _, impl := range All() {
		r, err := Run(impl, 20)
		if err != nil {
			t.Fatal(err)
		}
		if r.RoundTripNs < 10*sim.Microsecond || r.RoundTripNs > 10*sim.Millisecond {
			t.Errorf("%s round trip = %.1f us, outside the plausible range",
				impl, sim.Micros(r.RoundTripNs))
		}
	}
}

func TestUnknownImpl(t *testing.T) {
	if _, err := Run(Impl("bogus"), 1); err == nil {
		t.Error("bogus implementation accepted")
	}
}

func TestVerifyCatchesWrongAnswer(t *testing.T) {
	if err := Verify(Result{Impl: EventPair, Calls: 3, Answer: 5}); err == nil {
		t.Error("wrong answer accepted")
	}
}
