// Package rpcbench reproduces Low's RPC study (BPR 16; §3.3 of the paper):
// "Experiments with eight different implementations of remote procedure call
// explored the ramifications of these benchmarks for interprocess
// communication." Each implementation builds a synchronous call/return over
// different Chrysalis primitives, so their relative costs expose exactly
// which primitive dominates each design.
//
// The implementations (client and server are heavyweight processes on
// different nodes; the call carries a request word and returns a reply
// word; larger argument blocks are block-copied):
//
//  1. dualqueue-pair:   request and reply dual queues, one per direction.
//  2. event-pair:       a Chrysalis event in each direction carrying the
//     32-bit datum itself.
//  3. spin-mailbox:     shared-memory mailbox polled with test-and-set
//     (no scheduler involvement at all).
//  4. dualqueue-blkarg: dual queues for control, block-copied buffers for
//     a multi-word argument record.
//  5. smp-message:      the SMP library's typed messages.
//  6. lynx-rpc:         the Lynx language runtime (threads + dispatcher).
//
// (Two of Low's eight variants depended on microcode changes we do not
// model; the spread here covers the published cost range.)
package rpcbench

import (
	"fmt"

	"butterfly/internal/antfarm"
	"butterfly/internal/chrysalis"
	"butterfly/internal/lynx"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/smp"
)

// Impl names one RPC implementation.
type Impl string

// The implementations, in the order of the report.
const (
	DualQueuePair Impl = "dualqueue-pair"
	EventPair     Impl = "event-pair"
	SpinMailbox   Impl = "spin-mailbox"
	DualQueueBlk  Impl = "dualqueue-blkarg"
	SMPMessage    Impl = "smp-message"
	LynxRPC       Impl = "lynx-rpc"
)

// All lists every implementation.
func All() []Impl {
	return []Impl{DualQueuePair, EventPair, SpinMailbox, DualQueueBlk, SMPMessage, LynxRPC}
}

// Result reports one implementation's measured round trip.
type Result struct {
	Impl        Impl
	Calls       int
	RoundTripNs int64
	// Answer is the final accumulated server state, for correctness checks.
	Answer uint32
}

// Run measures `calls` synchronous round trips of the given implementation.
// Every implementation computes the same function (the server accumulates
// the request values and returns the running sum), so results are checkable.
func Run(impl Impl, calls int) (Result, error) {
	switch impl {
	case DualQueuePair:
		return runDualQueue(calls, 0)
	case DualQueueBlk:
		return runDualQueue(calls, 64)
	case EventPair:
		return runEventPair(calls)
	case SpinMailbox:
		return runSpinMailbox(calls)
	case SMPMessage:
		return runSMP(calls)
	case LynxRPC:
		return runLynx(calls)
	}
	return Result{}, fmt.Errorf("rpcbench: unknown implementation %q", impl)
}

// expected returns the checked answer for `calls` accumulating calls.
func expected(calls int) uint32 {
	var sum uint32
	for i := 1; i <= calls; i++ {
		sum += uint32(i)
	}
	return sum
}

// runDualQueue implements call/return over two dual queues; argWords > 0
// adds a block-copied argument record per direction.
func runDualQueue(calls, argWords int) (Result, error) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	req := os.NewDualQueue(1, nil) // at the server
	rep := os.NewDualQueue(0, nil) // at the client
	var sum uint32
	var elapsed int64
	if _, err := os.MakeProcess(nil, "server", 1, 8, func(self *chrysalis.Process) {
		for i := 0; i < calls; i++ {
			v := req.Dequeue(self.P)
			if argWords > 0 {
				m.Read(self.P, 1, argWords) // unpack the argument record
			}
			sum += v
			if argWords > 0 {
				m.BlockCopy(self.P, 1, 0, argWords)
			}
			rep.Enqueue(self.P, sum)
		}
	}); err != nil {
		return Result{}, err
	}
	if _, err := os.MakeProcess(nil, "client", 0, 8, func(self *chrysalis.Process) {
		t0 := m.E.Now()
		for i := 1; i <= calls; i++ {
			if argWords > 0 {
				m.BlockCopy(self.P, 0, 1, argWords)
			}
			req.Enqueue(self.P, uint32(i))
			rep.Dequeue(self.P)
		}
		elapsed = m.E.Now() - t0
	}); err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	impl := DualQueuePair
	if argWords > 0 {
		impl = DualQueueBlk
	}
	return Result{Impl: impl, Calls: calls, RoundTripNs: elapsed / int64(calls), Answer: sum}, nil
}

// runEventPair implements call/return over two events (the datum rides in
// the post).
func runEventPair(calls int) (Result, error) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	var sum uint32
	var elapsed int64
	var reqEv, repEv *chrysalis.Event
	server, err := os.MakeProcess(nil, "server", 1, 8, func(self *chrysalis.Process) {
		for i := 0; i < calls; i++ {
			v := reqEv.Wait(self.P)
			sum += v
			repEv.Post(self.P, sum)
		}
	})
	if err != nil {
		return Result{}, err
	}
	client, err := os.MakeProcess(nil, "client", 0, 8, func(self *chrysalis.Process) {
		t0 := m.E.Now()
		for i := 1; i <= calls; i++ {
			reqEv.Post(self.P, uint32(i))
			repEv.Wait(self.P)
		}
		elapsed = m.E.Now() - t0
	})
	if err != nil {
		return Result{}, err
	}
	reqEv = os.NewEvent(server)
	repEv = os.NewEvent(client)
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	return Result{Impl: EventPair, Calls: calls, RoundTripNs: elapsed / int64(calls), Answer: sum}, nil
}

// runSpinMailbox implements call/return by polling shared words with atomic
// operations — no scheduler, pure busy-waiting (cheapest latency, worst
// citizenship: the polling steals cycles from the mailbox's home node).
func runSpinMailbox(calls int) (Result, error) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	var sum uint32
	var elapsed int64
	// Mailbox state lives on the server's node.
	var reqFull, repFull bool
	var reqVal uint32
	const pollGap = 2 * sim.Microsecond
	if _, err := os.MakeProcess(nil, "server", 1, 8, func(self *chrysalis.Process) {
		for i := 0; i < calls; i++ {
			for {
				m.Atomic(self.P, 1)
				self.P.Sync() // observe the mailbox at the reference's completion time
				if reqFull {
					break
				}
				self.P.Advance(pollGap)
			}
			reqFull = false
			sum += reqVal
			m.Atomic(self.P, 1)
			self.P.Sync()
			repFull = true
		}
	}); err != nil {
		return Result{}, err
	}
	if _, err := os.MakeProcess(nil, "client", 0, 8, func(self *chrysalis.Process) {
		t0 := m.E.Now()
		for i := 1; i <= calls; i++ {
			reqVal = uint32(i)
			m.Atomic(self.P, 1)
			self.P.Sync()
			reqFull = true
			for {
				m.Atomic(self.P, 1)
				self.P.Sync()
				if repFull {
					break
				}
				self.P.Advance(pollGap)
			}
			repFull = false
		}
		elapsed = m.E.Now() - t0
	}); err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	return Result{Impl: SpinMailbox, Calls: calls, RoundTripNs: elapsed / int64(calls), Answer: sum}, nil
}

// runSMP implements call/return with SMP messages.
func runSMP(calls int) (Result, error) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	var sum uint32
	var elapsed int64
	_, err := smp.NewFamily(os, nil, "rpc", []int{0, 1}, smp.Full{}, smp.DefaultConfig(), func(mem *smp.Member) {
		if mem.ID == 1 {
			for i := 0; i < calls; i++ {
				msg := mem.Recv()
				sum += msg.Payload.(uint32)
				if err := mem.Send(0, 0, 1, sum); err != nil {
					panic(err)
				}
			}
			return
		}
		t0 := m.E.Now()
		for i := 1; i <= calls; i++ {
			if err := mem.Send(1, 0, 1, uint32(i)); err != nil {
				panic(err)
			}
			mem.Recv()
		}
		elapsed = m.E.Now() - t0
	})
	if err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	return Result{Impl: SMPMessage, Calls: calls, RoundTripNs: elapsed / int64(calls), Answer: sum}, nil
}

// runLynx implements call/return with the Lynx runtime.
func runLynx(calls int) (Result, error) {
	m := machine.New(machine.DefaultConfig(2))
	os := chrysalis.New(m)
	var sum uint32
	var elapsed int64
	server, err := lynx.Spawn(os, "server", 1, lynx.DefaultConfig(), nil)
	if err != nil {
		return Result{}, err
	}
	server.Bind("acc", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		sum += args.(uint32)
		return sum, 1, nil
	})
	if _, err := lynx.Spawn(os, "client", 0, lynx.DefaultConfig(), func(self *lynx.Proc, th *antfarm.Thread) {
		l := lynx.NewLink(self, server)
		t0 := th.P().Engine().Now()
		for i := 1; i <= calls; i++ {
			if _, err := self.Call(th, l, "acc", uint32(i), 1); err != nil {
				panic(err)
			}
		}
		elapsed = th.P().Engine().Now() - t0
		server.Shutdown(th)
	}); err != nil {
		return Result{}, err
	}
	if err := m.E.Run(); err != nil {
		return Result{}, err
	}
	return Result{Impl: LynxRPC, Calls: calls, RoundTripNs: elapsed / int64(calls), Answer: sum}, nil
}

// Verify checks a result's answer.
func Verify(r Result) error {
	if want := expected(r.Calls); r.Answer != want {
		return fmt.Errorf("rpcbench: %s computed %d, want %d", r.Impl, r.Answer, want)
	}
	return nil
}
