package calibrate

import (
	"math"
	"strings"
	"testing"
)

func TestCheckPassAndRelErr(t *testing.T) {
	cases := []struct {
		name string
		c    Check
		err  float64
		pass bool
	}{
		{"exact", Check{Measured: 4.4, Expected: 4.4, Tol: 0}, 0, true},
		{"within", Check{Measured: 4.8, Expected: 4.0, Tol: 0.25}, 0.2, true},
		{"at-bound", Check{Measured: 5.0, Expected: 4.0, Tol: 0.25}, 0.25, true},
		{"outside", Check{Measured: 5.2, Expected: 4.0, Tol: 0.25}, 0.3, false},
		{"negative-expected", Check{Measured: -0.9, Expected: -1.0, Tol: 0.2}, 0.1, true},
		{"both-zero", Check{Measured: 0, Expected: 0, Tol: 0}, 0, true},
	}
	for _, tc := range cases {
		if got := tc.c.RelErr(); math.Abs(got-tc.err) > 1e-9 {
			t.Errorf("%s: RelErr = %v, want %v", tc.name, got, tc.err)
		}
		if got := tc.c.Pass(); got != tc.pass {
			t.Errorf("%s: Pass = %v, want %v", tc.name, got, tc.pass)
		}
	}
	// Nonzero measurement against a zero expectation can never pass.
	c := Check{Measured: 0.001, Expected: 0, Tol: 0.99}
	if !math.IsInf(c.RelErr(), 1) || c.Pass() {
		t.Errorf("zero-expectation check: RelErr = %v, Pass = %v", c.RelErr(), c.Pass())
	}
}

func TestSuiteReportAllPass(t *testing.T) {
	var s Suite
	s.Add(Check{Name: "rtt", Unit: "us", Measured: 4.5, Expected: 4.4, Tol: 0.1, Source: "tbl"})
	s.Add(Check{Name: "ratio", Unit: "ratio", Measured: 1.0, Expected: 1.0, Tol: 0.05, Source: "theory"})
	var sb strings.Builder
	if !s.WriteReport(&sb) {
		t.Fatalf("all-pass suite reported failure:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "2/2 checks within tolerance") {
		t.Errorf("missing pass summary:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("spurious FAIL:\n%s", out)
	}
	if len(s.Failures()) != 0 {
		t.Errorf("Failures = %v", s.Failures())
	}
}

func TestSuiteReportWithFailure(t *testing.T) {
	var s Suite
	s.Add(Check{Name: "good", Unit: "us", Measured: 1.0, Expected: 1.0, Tol: 0.1, Source: "a"})
	s.Add(Check{Name: "bad", Unit: "us", Measured: 2.0, Expected: 1.0, Tol: 0.1, Source: "paper tbl 3"})
	var sb strings.Builder
	if s.WriteReport(&sb) {
		t.Fatal("suite with a failing check reported success")
	}
	out := sb.String()
	if !strings.Contains(out, "1/2 checks FAILED tolerance") {
		t.Errorf("missing fail summary:\n%s", out)
	}
	// The failure detail cites the expectation's source.
	if !strings.Contains(out, "paper tbl 3") {
		t.Errorf("failure detail missing source:\n%s", out)
	}
	fails := s.Failures()
	if len(fails) != 1 || fails[0].Name != "bad" {
		t.Errorf("Failures = %v", fails)
	}
}
