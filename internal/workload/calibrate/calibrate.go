// Package calibrate validates measured service curves against paper-derived
// expectations with explicit tolerances — the step that turns "the
// fingerprints didn't change" into "the simulator predicts the published
// numbers within ε". A Check pairs one measurement with its expectation,
// the tolerance it must meet, and the source of the expectation (a paper
// table, or queueing theory applied to measured parameters); a Suite
// renders the verdict table and reports overall pass/fail.
//
// The design follows the scalability-estimation idiom cited in PAPERS.md:
// predictions are only worth publishing alongside the measurement error
// bars, and a calibration harness that fails loudly when the model drifts
// is what keeps every other table in the repository honest.
package calibrate

import (
	"fmt"
	"io"
	"math"
)

// Check is one calibration point: a measured value, the expected value it
// must approximate, and the relative tolerance ε it must meet.
type Check struct {
	// Name identifies the check in the report.
	Name string
	// Unit labels both values ("us", "ms", "ratio", ...).
	Unit string
	// Measured is the simulator's number; Expected is the paper-derived
	// (or theory-derived) prediction.
	Measured, Expected float64
	// Tol is the relative tolerance: |measured-expected|/|expected| <= Tol.
	Tol float64
	// Source cites where Expected comes from.
	Source string
}

// RelErr is the relative error of the measurement (infinite when the
// expectation is zero but the measurement is not).
func (c Check) RelErr() float64 {
	if c.Expected == 0 {
		if c.Measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(c.Measured-c.Expected) / math.Abs(c.Expected)
}

// Pass reports whether the measurement is within tolerance.
func (c Check) Pass() bool { return c.RelErr() <= c.Tol }

// Suite accumulates checks in insertion order.
type Suite struct {
	Checks []Check
}

// Add appends one check.
func (s *Suite) Add(c Check) { s.Checks = append(s.Checks, c) }

// Failures returns the checks outside tolerance.
func (s *Suite) Failures() []Check {
	var out []Check
	for _, c := range s.Checks {
		if !c.Pass() {
			out = append(out, c)
		}
	}
	return out
}

// WriteReport renders the verdict table and returns whether every check
// passed.
func (s *Suite) WriteReport(w io.Writer) bool {
	fmt.Fprintf(w, "%-34s %12s %12s %8s %7s %7s  %s\n",
		"check", "measured", "expected", "unit", "err", "tol", "verdict")
	all := true
	for _, c := range s.Checks {
		verdict := "PASS"
		if !c.Pass() {
			verdict = "FAIL"
			all = false
		}
		fmt.Fprintf(w, "%-34s %12.3f %12.3f %8s %6.1f%% %6.0f%%  %s\n",
			c.Name, c.Measured, c.Expected, c.Unit, 100*c.RelErr(), 100*c.Tol, verdict)
	}
	n := len(s.Checks)
	fails := len(s.Failures())
	if fails == 0 {
		fmt.Fprintf(w, "\ncalibration: %d/%d checks within tolerance\n", n, n)
	} else {
		fmt.Fprintf(w, "\ncalibration: %d/%d checks FAILED tolerance\n", fails, n)
		for _, c := range s.Failures() {
			fmt.Fprintf(w, "  %s: measured %.3f vs expected %.3f (%s)\n",
				c.Name, c.Measured, c.Expected, c.Source)
		}
	}
	return all
}
