package workload

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestArrivalsDeterministic(t *testing.T) {
	for _, p := range []Pattern{Poisson, Bursty, Diurnal} {
		cfg := Default()
		cfg.Pattern = p
		cfg.Seed = 42
		a := cfg.Arrivals()
		b := cfg.Arrivals()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same config produced different streams", p)
		}
		if len(a) == 0 {
			t.Fatalf("%s: empty stream", p)
		}
		cfg.Seed = 43
		c := cfg.Arrivals()
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced the same stream", p)
		}
	}
}

func TestArrivalsOrderedAndBounded(t *testing.T) {
	for _, p := range []Pattern{Poisson, Bursty, Diurnal} {
		cfg := Default()
		cfg.Pattern = p
		prev := int64(-1)
		for i, at := range cfg.Arrivals() {
			if at <= prev {
				t.Fatalf("%s: arrival %d at %d not after %d", p, i, at, prev)
			}
			if at < 0 || at >= cfg.DurationNs {
				t.Fatalf("%s: arrival %d at %d outside [0, %d)", p, i, at, cfg.DurationNs)
			}
			prev = at
		}
	}
}

func TestPoissonRealizedRate(t *testing.T) {
	cfg := Default()
	cfg.Rate = 1500
	cfg.DurationNs = 4_000_000_000 // 4 s: enough arrivals to average out
	got := float64(len(cfg.Arrivals())) / 4
	if got < 0.9*cfg.Rate || got > 1.1*cfg.Rate {
		t.Errorf("realized rate %.0f/s, configured %.0f/s", got, cfg.Rate)
	}
}

func TestBurstyMeanAboveCalmRate(t *testing.T) {
	cfg := Default()
	cfg.Pattern = Bursty
	cfg.Rate = 1500
	cfg.BurstRate = 6000
	cfg.DurationNs = 4_000_000_000
	// MMPP mean = (calmDwell*rate + burstDwell*burstRate) / (calm+burst)
	// = (15ms*1500 + 5ms*6000)/20ms = 2625/s. Allow generous slack: state
	// dwell variance is high even over 4 s.
	got := float64(len(cfg.Arrivals())) / 4
	if got < 1800 || got > 3500 {
		t.Errorf("bursty realized rate %.0f/s, MMPP mean is 2625/s", got)
	}
}

func TestParseOverlay(t *testing.T) {
	c, err := Parse("pattern bursty; rate 6000; burst-rate 24000 # peak\nseed 7; duration 60ms; sources 3; servers 5; window 5ms; detail", Default())
	if err != nil {
		t.Fatal(err)
	}
	if c.Pattern != Bursty || c.Rate != 6000 || c.BurstRate != 24000 ||
		c.Seed != 7 || c.DurationNs != 60_000_000 || c.Sources != 3 ||
		c.Servers != 5 || c.WindowNs != 5_000_000 || !c.Detail {
		t.Errorf("parsed config = %+v", c)
	}
	// Unset fields keep the base values.
	if c.BurstDwellNs != Default().BurstDwellNs {
		t.Errorf("burst-dwell lost the default: %d", c.BurstDwellNs)
	}
}

func TestParseEmptyIsBase(t *testing.T) {
	c, err := Parse("", Default())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, Default()) {
		t.Errorf("empty overlay changed the config: %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"warp 9", "unknown directive"},
		{"rate fast", "bad number"},
		{"rate", "exactly one argument"},
		{"rate 100 200", "exactly one argument"},
		{"detail now", "takes no argument"},
		{"duration -5ms", "bad duration"},
		{"duration 5parsecs", "bad duration"},
		{"pattern square-wave", "unknown pattern"},
		{"rate 0", "rate must be > 0"},
		{"sources 0", "sources must be > 0"},
		{"seed -1", "invalid syntax"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.spec, Default()); err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.spec, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseDurationUnits(t *testing.T) {
	cases := map[string]int64{
		"250":   250,
		"250ns": 250,
		"3us":   3_000,
		"2.5ms": 2_500_000,
		"1s":    1_000_000_000,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
}

func TestScopeShadowsAmbient(t *testing.T) {
	SetAmbient("rate 111")
	defer SetAmbient("")

	if got := Current(); got != "rate 111" {
		t.Fatalf("ambient not visible: %q", got)
	}
	release := Scope("rate 222")
	if got := Current(); got != "rate 222" {
		t.Errorf("scope did not shadow ambient: %q", got)
	}
	release()
	if got := Current(); got != "rate 111" {
		t.Errorf("release did not restore ambient: %q", got)
	}
}

func TestEmptyScopeShieldsAmbient(t *testing.T) {
	// A lab job with no workload axis must NOT inherit the CLI's ambient
	// string — an empty scoped value wins over a non-empty ambient.
	SetAmbient("rate 333")
	defer SetAmbient("")
	release := Scope("")
	defer release()
	if got := Current(); got != "" {
		t.Errorf("empty scope leaked ambient %q", got)
	}
}

func TestScopeIsPerGoroutine(t *testing.T) {
	release := Scope("rate 444")
	defer release()
	var got string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got = Current()
	}()
	wg.Wait()
	if got != "" {
		t.Errorf("another goroutine saw the scoped value %q", got)
	}
}

func TestScopeDoubleRegisterPanics(t *testing.T) {
	release := Scope("a")
	defer release()
	defer func() {
		if recover() == nil {
			t.Error("second Scope on one goroutine did not panic")
		}
	}()
	Scope("b")
}
