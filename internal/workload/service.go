package workload

import (
	"fmt"

	"butterfly/internal/antfarm"
	"butterfly/internal/chrysalis"
	"butterfly/internal/fault"
	"butterfly/internal/lynx"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/slo"
	"butterfly/internal/us"
)

// The service adapters run an existing Butterfly runtime as a service
// under an open-loop arrival stream and return its SLO accounting. Each
// adapter builds its own machine (so the lab's scoped construction hooks —
// presets, node overrides, probes, fault injectors — apply), paces the
// injectors against the scheduled arrival times, measures every request
// from its *scheduled* arrival to its completion in virtual time, and
// drains the backlog before returning, so a saturated run still terminates
// with every request accounted for.

// Result is one service run's outcome.
type Result struct {
	// Tracker holds the per-request accounting.
	Tracker *slo.Tracker
	// Injected is the arrival-stream length.
	Injected int
	// VTimeNs is the engine's final virtual time (traffic horizon plus
	// drain tail).
	VTimeNs int64
}

// drainPollNs is how often a drained injector re-checks its completion
// count. Polling (rather than a wakeup) keeps the adapters out of the
// runtimes' internals; the poll happens off the service's critical path.
const drainPollNs = 1 * sim.Millisecond

// EchoOpts tunes the Lynx RPC echo service.
type EchoOpts struct {
	// Machine is the hardware the service runs on.
	Machine machine.Config
	// Faults, when non-nil, arms a fault injector on the machine (the
	// brownout experiment's kill schedule).
	Faults *fault.Config
	// EchoFlops is the per-request handler computation.
	EchoFlops int
	// ReplyWords is the marshalled size of request and reply.
	ReplyWords int
	// CallTimeoutNs bounds each RPC; 0 keeps Lynx's block-forever default
	// unless Faults is set, in which case a safety timeout is imposed so a
	// mid-call node death cannot hang a client thread.
	CallTimeoutNs int64
}

// RunLynxEcho serves cfg's arrival stream with Servers Lynx echo processes
// (nodes 1..Servers) called by Sources client processes (the next Sources
// nodes). Requests route round-robin by arrival index, skipping servers on
// failed nodes — the service-level recovery a brownout exercises.
func RunLynxEcho(cfg Config, o EchoOpts) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	need := 1 + cfg.Servers + cfg.Sources
	if o.Machine.Nodes < need {
		return nil, fmt.Errorf("workload: lynx-echo needs %d nodes (1 + %d servers + %d sources), machine has %d",
			need, cfg.Servers, cfg.Sources, o.Machine.Nodes)
	}
	arr := cfg.Arrivals()
	m := machine.New(o.Machine)
	if o.Faults != nil {
		m.AttachFaults(fault.NewInjector(*o.Faults))
	}
	osys := chrysalis.New(m)

	lcfg := lynx.DefaultConfig()
	lcfg.CallTimeoutNs = o.CallTimeoutNs
	if lcfg.CallTimeoutNs == 0 && o.Faults != nil {
		lcfg.CallTimeoutNs = 8 * sim.Millisecond
	}

	tr := slo.NewTracker(cfg.WindowNs)
	pr := m.Probe()

	servers := make([]*lynx.Proc, cfg.Servers)
	for s := range servers {
		sp, err := lynx.Spawn(osys, fmt.Sprintf("echo-%d", s), 1+s, lcfg, nil)
		if err != nil {
			return nil, err
		}
		sp.Bind("echo", func(t *antfarm.Thread, args any, words int) (any, int, error) {
			if o.EchoFlops > 0 {
				m.Flops(t.P(), o.EchoFlops)
			}
			return args, o.ReplyWords, nil
		})
		servers[s] = sp
	}

	// links[c][s] connects client c to server s; filled in after the client
	// processes exist, before the engine runs.
	links := make([][]*lynx.Link, cfg.Sources)
	clientsDone := 0

	for c := 0; c < cfg.Sources; c++ {
		ci := c
		var self *lynx.Proc
		cp, err := lynx.Spawn(osys, fmt.Sprintf("client-%d", ci), 1+cfg.Servers+ci, lcfg,
			func(lp *lynx.Proc, t *antfarm.Thread) {
				pending := 0
				for idx := ci; idx < len(arr); idx += cfg.Sources {
					at := arr[idx]
					if d := at - t.P().LocalNow(); d > 0 {
						t.BlockThreadTimeout("workload-pace", d)
					}
					tr.Arrival(at)
					if pr != nil {
						pr.ReqStart(at, t.P().ID, "lynx-echo")
					}
					k := idx
					pending++
					t.Farm.Spawn("req", func(ct *antfarm.Thread) {
						ok := false
						if si := liveServer(m, servers, k); si >= 0 {
							_, err := self.Call(ct, links[ci][si], "echo", k, o.ReplyWords)
							ok = err == nil
						}
						end := ct.P().LocalNow()
						tr.Done(at, end, ok)
						if pr != nil {
							pr.ReqDone(end, end-at, ct.P().ID, "lynx-echo", ok)
						}
						pending--
					})
				}
				for pending > 0 {
					t.BlockThreadTimeout("workload-drain", drainPollNs)
				}
				clientsDone++
				if clientsDone == cfg.Sources {
					// Last client out turns off the lights. A server whose
					// node died cannot receive the shutdown message (its
					// dispatcher is already dead); a reference fault on the
					// send is likewise survivable.
					for _, s := range servers {
						if m.NodeFailed(s.Node) {
							continue
						}
						srv := s
						func() {
							var e error
							defer fault.CatchRef(&e)
							srv.Shutdown(t)
						}()
					}
				}
			})
		if err != nil {
			return nil, err
		}
		self = cp
		links[ci] = make([]*lynx.Link, cfg.Servers)
		for s := range servers {
			links[ci][s] = lynx.NewLink(cp, servers[s])
		}
	}

	if err := m.E.Run(); err != nil {
		return nil, err
	}
	return &Result{Tracker: tr, Injected: len(arr), VTimeNs: m.E.Now()}, nil
}

// liveServer picks the request's server: round-robin by arrival index
// across the servers whose nodes are still alive, so a dead server's share
// of the traffic spreads evenly over the survivors instead of piling onto
// one neighbor. Deterministic — the same request lands on the same server
// given the same fault history. Returns -1 when every server is dead.
func liveServer(m *machine.Machine, servers []*lynx.Proc, k int) int {
	live := 0
	for _, s := range servers {
		if !m.NodeFailed(s.Node) {
			live++
		}
	}
	if live == 0 {
		return -1
	}
	want := k % live
	for i, s := range servers {
		if m.NodeFailed(s.Node) {
			continue
		}
		if want == 0 {
			return i
		}
		want--
	}
	return -1
}

// TasksOpts tunes the Uniform System task service.
type TasksOpts struct {
	// Machine is the hardware the service runs on.
	Machine machine.Config
	// Workers is the Uniform System worker count (0 = every node). Worker
	// 0 is the injector; workers 1..Workers-1 execute tasks.
	Workers int
	// RowWords is the block each task copies from its data's home node to
	// its own before computing (the §4.1 caching idiom).
	RowWords int
	// TaskFlops is the per-task computation.
	TaskFlops int
}

// RunUSTasks serves cfg's arrival stream by submitting one Uniform System
// task per request through the open-loop us.Submit path: the generator
// process paces injection against the arrival clock while the manager pool
// dequeues and executes. Sources and Servers are fixed by the US shape
// (one generator, Workers-1 managers), so cfg.Sources/Servers are ignored.
func RunUSTasks(cfg Config, o TasksOpts) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := machine.New(o.Machine)
	osys := chrysalis.New(m)
	workers := o.Workers
	if workers <= 0 || workers > m.N() {
		workers = m.N()
	}
	if workers < 2 {
		return nil, fmt.Errorf("workload: us-tasks needs at least 2 workers (1 generator + 1 manager), got %d", workers)
	}
	arr := cfg.Arrivals()
	tr := slo.NewTracker(cfg.WindowNs)
	pr := m.Probe()

	completed := 0
	_, err := us.Initialize(osys, us.DefaultConfig(workers), func(g *us.Worker) {
		for i, at := range arr {
			if d := at - g.P.LocalNow(); d > 0 {
				g.P.Advance(d)
			}
			tr.Arrival(at)
			if pr != nil {
				pr.ReqStart(at, g.P.ID, "us-tasks")
			}
			arrivedAt := at
			home := i % workers
			g.U.Submit(g, func(tw *us.Worker, index int) {
				if o.RowWords > 0 && home != tw.ID {
					m.BlockCopy(tw.P, home, tw.ID, o.RowWords)
				}
				if o.TaskFlops > 0 {
					m.Flops(tw.P, o.TaskFlops)
				}
				m.Write(tw.P, home, 1) // publish the result to the data's home
				tw.P.Sync()
				end := tw.P.LocalNow()
				tr.Done(arrivedAt, end, true)
				if pr != nil {
					pr.ReqDone(end, end-arrivedAt, tw.P.ID, "us-tasks", true)
				}
				completed++
			}, i)
		}
		for completed < len(arr) {
			g.P.Advance(drainPollNs)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := m.E.Run(); err != nil {
		return nil, err
	}
	return &Result{Tracker: tr, Injected: len(arr), VTimeNs: m.E.Now()}, nil
}

// CounterOpts tunes the hot-spot shared-counter service.
type CounterOpts struct {
	// Machine is the hardware the service runs on.
	Machine machine.Config
	// WorkNs is per-request local work after the counter update.
	WorkNs int64
}

// RunHotspotCounter serves cfg's arrival stream against the paper's
// hot-spot pathology run as a service: every request performs one atomic
// fetch-and-increment on a single shared counter at node 0. Each request
// is its own short-lived process (spawned mid-run on a node chosen
// round-robin), so the only bottleneck is the contended memory module
// itself — the saturation knee this service exhibits *is* the module's
// service capacity, which makes it the cleanest curve for calibration.
func RunHotspotCounter(cfg Config, o CounterOpts) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := machine.New(o.Machine)
	if m.N() < cfg.Sources+2 {
		return nil, fmt.Errorf("workload: hotspot-counter needs %d nodes (counter + %d sources + a worker), machine has %d",
			cfg.Sources+2, cfg.Sources, m.N())
	}
	arr := cfg.Arrivals()
	tr := slo.NewTracker(cfg.WindowNs)
	pr := m.Probe()

	for s := 0; s < cfg.Sources; s++ {
		src := s
		m.Spawn(fmt.Sprintf("inject-%d", src), 1+src, func(p *sim.Proc) {
			for idx := src; idx < len(arr); idx += cfg.Sources {
				at := arr[idx]
				if d := at - p.LocalNow(); d > 0 {
					p.Advance(d)
				}
				tr.Arrival(at)
				if pr != nil {
					pr.ReqStart(at, p.ID, "hotspot-counter")
				}
				node := 1 + idx%(m.N()-1)
				m.Spawn("req", node, func(rp *sim.Proc) {
					var ferr error
					func() {
						defer fault.CatchRef(&ferr)
						m.Atomic(rp, 0)
						rp.Sync()
					}()
					if o.WorkNs > 0 {
						rp.Advance(o.WorkNs)
					}
					end := rp.LocalNow()
					tr.Done(at, end, ferr == nil)
					if pr != nil {
						pr.ReqDone(end, end-at, rp.ID, "hotspot-counter", ferr == nil)
					}
				})
			}
		})
	}

	// No explicit drain: the engine runs until the injectors finish and
	// every spawned request process completes.
	if err := m.E.Run(); err != nil {
		return nil, err
	}
	return &Result{Tracker: tr, Injected: len(arr), VTimeNs: m.E.Now()}, nil
}
