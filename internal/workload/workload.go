// Package workload generates deterministic open-loop request traffic for
// the Butterfly services: arrival streams (Poisson, bursty/MMPP, diurnal
// ramp) drawn from a seeded PCG so the same config always yields the same
// byte-identical stream, service adapters that inject those arrivals into
// the existing runtimes (Lynx RPC echo, Uniform System task generator, the
// hot-spot shared counter), and directive-string configuration in the
// internal/fault grammar so a workload travels through core.Spec, the lab
// cache fingerprint, and `butterflybench -workload` as one string.
//
// Open-loop is the load model that matters for a service: arrivals are
// scheduled by the generator's clock, not gated on previous completions,
// so a saturated server faces a growing backlog exactly as a production
// fleet would — and latency is measured from the *scheduled* arrival time,
// which makes the numbers immune to coordinated omission. Because arrival
// times are virtual nanoseconds inside the simulation, the whole stochastic
// apparatus stays deterministic: the generator's PCG stream is part of the
// experiment's physics, not of the host's entropy.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"
)

// Pattern selects the arrival process.
type Pattern string

// Arrival patterns.
const (
	// Poisson: exponential i.i.d. gaps at Rate — the memoryless baseline.
	Poisson Pattern = "poisson"
	// Bursty: a two-state MMPP alternating between Rate (calm) and
	// BurstRate (burst) with exponentially distributed dwell times.
	Bursty Pattern = "bursty"
	// Diurnal: a Poisson process thinned against a triangular rate profile
	// ramping 0.25x -> 1.75x Rate and back over the duration (mean 1.0x) —
	// a day of traffic compressed into the run.
	Diurnal Pattern = "diurnal"
)

// Config describes one workload. The zero value is not runnable; start
// from Default and overlay directives with Parse.
type Config struct {
	// Pattern is the arrival process.
	Pattern Pattern
	// Rate is the offered load in requests per second of virtual time
	// (the calm-state rate for Bursty, the mean rate for Diurnal).
	Rate float64
	// BurstRate is the burst-state rate for Bursty (default 4x Rate).
	BurstRate float64
	// BurstDwellNs / CalmDwellNs are the mean state dwell times for Bursty.
	BurstDwellNs int64
	CalmDwellNs  int64
	// Seed seeds the PCG behind every probabilistic draw.
	Seed uint64
	// DurationNs is the traffic horizon: no arrivals at or beyond it.
	DurationNs int64
	// Sources is how many injector processes split the stream (round-robin
	// by arrival index).
	Sources int
	// Servers is how many server processes the adapter provisions (where
	// the service has that degree of freedom).
	Servers int
	// WindowNs is the SLO reporting/verdict window width.
	WindowNs int64
	// Detail switches the experiment output from the summary block to the
	// full per-window SLO table.
	Detail bool
}

// Default is the baseline workload every experiment starts from.
func Default() Config {
	return Config{
		Pattern:      Poisson,
		Rate:         4000,
		BurstDwellNs: 5_000_000,  // 5 ms
		CalmDwellNs:  15_000_000, // 15 ms
		Seed:         1,
		DurationNs:   80_000_000, // 80 ms
		Sources:      2,
		Servers:      4,
		WindowNs:     10_000_000, // 10 ms
	}
}

// Validate rejects configs the generators cannot honor.
func (c Config) Validate() error {
	switch c.Pattern {
	case Poisson, Bursty, Diurnal:
	default:
		return fmt.Errorf("workload: unknown pattern %q (valid: poisson, bursty, diurnal)", c.Pattern)
	}
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("workload: rate must be > 0, got %v", c.Rate)
	}
	if c.Pattern == Bursty {
		if !(c.BurstRate >= 0) {
			return fmt.Errorf("workload: burst-rate must be >= 0, got %v", c.BurstRate)
		}
		if c.BurstDwellNs <= 0 || c.CalmDwellNs <= 0 {
			return fmt.Errorf("workload: bursty needs positive burst-dwell and calm-dwell")
		}
	}
	if c.DurationNs <= 0 {
		return fmt.Errorf("workload: duration must be > 0, got %dns", c.DurationNs)
	}
	if c.Sources <= 0 {
		return fmt.Errorf("workload: sources must be > 0, got %d", c.Sources)
	}
	if c.Servers <= 0 {
		return fmt.Errorf("workload: servers must be > 0, got %d", c.Servers)
	}
	if c.WindowNs <= 0 {
		return fmt.Errorf("workload: window must be > 0, got %dns", c.WindowNs)
	}
	return nil
}

// Parse overlays a directive string onto base, in the internal/fault
// grammar: directives separated by ';' or newlines, '#' comments, e.g.
//
//	"pattern bursty; rate 6000; burst-rate 24000; seed 7; duration 60ms"
//
// Directives: pattern P, rate R, burst-rate R, burst-dwell DUR,
// calm-dwell DUR, seed N, duration DUR, sources N, servers N, window DUR,
// detail. Durations accept ns/us/ms/s suffixes (bare numbers are
// nanoseconds).
func Parse(spec string, base Config) (Config, error) {
	c := base
	for _, raw := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' }) {
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		d := strings.TrimSpace(raw)
		if d == "" {
			continue
		}
		fields := strings.Fields(d)
		key := fields[0]
		arg := func() (string, error) {
			if len(fields) != 2 {
				return "", fmt.Errorf("workload: directive %q wants exactly one argument", d)
			}
			return fields[1], nil
		}
		var err error
		switch key {
		case "pattern":
			var a string
			if a, err = arg(); err == nil {
				c.Pattern = Pattern(a)
			}
		case "rate":
			err = parseFloat(arg, &c.Rate)
		case "burst-rate":
			err = parseFloat(arg, &c.BurstRate)
		case "burst-dwell":
			err = parseDur(arg, &c.BurstDwellNs)
		case "calm-dwell":
			err = parseDur(arg, &c.CalmDwellNs)
		case "seed":
			var a string
			if a, err = arg(); err == nil {
				c.Seed, err = strconv.ParseUint(a, 10, 64)
			}
		case "duration":
			err = parseDur(arg, &c.DurationNs)
		case "sources":
			err = parseInt(arg, &c.Sources)
		case "servers":
			err = parseInt(arg, &c.Servers)
		case "window":
			err = parseDur(arg, &c.WindowNs)
		case "detail":
			if len(fields) != 1 {
				err = fmt.Errorf("workload: directive %q takes no argument", key)
			}
			c.Detail = true
		default:
			err = fmt.Errorf("workload: unknown directive %q", key)
		}
		if err != nil {
			return Config{}, err
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

func parseFloat(arg func() (string, error), dst *float64) error {
	a, err := arg()
	if err != nil {
		return err
	}
	v, err := strconv.ParseFloat(a, 64)
	if err != nil {
		return fmt.Errorf("workload: bad number %q", a)
	}
	*dst = v
	return nil
}

func parseInt(arg func() (string, error), dst *int) error {
	a, err := arg()
	if err != nil {
		return err
	}
	v, err := strconv.Atoi(a)
	if err != nil {
		return fmt.Errorf("workload: bad integer %q", a)
	}
	*dst = v
	return nil
}

func parseDur(arg func() (string, error), dst *int64) error {
	a, err := arg()
	if err != nil {
		return err
	}
	v, err := ParseDuration(a)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

// ParseDuration parses a virtual duration: a number with an optional
// s/ms/us/ns suffix (no suffix means nanoseconds).
func ParseDuration(s string) (int64, error) {
	mult := int64(1)
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, num = 1_000_000, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		mult, num = 1_000, s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		mult, num = 1, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		mult, num = 1_000_000_000, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("workload: bad duration %q", s)
	}
	return int64(v * float64(mult)), nil
}

// pcgStream distinguishes the workload's PCG stream from other seeded
// consumers (the fault injector seeds its own); same spirit as a hash
// domain separator.
const pcgStream = 0x42464C59 // "BFLY"

// Arrivals materializes the config's full arrival stream: absolute,
// nondecreasing virtual-nanosecond timestamps in [0, DurationNs). The
// stream is a pure function of the config — same seed, same pattern, same
// rates, byte-identical stream — which is the determinism argument for the
// whole subsystem: randomness lives in the spec, not in the host.
func (c Config) Arrivals() []int64 {
	rng := rand.New(rand.NewPCG(c.Seed, pcgStream))
	est := int(c.Rate*float64(c.DurationNs)/1e9 + 16)
	out := make([]int64, 0, est)
	switch c.Pattern {
	case Bursty:
		burst := c.BurstRate
		if burst <= 0 {
			burst = 4 * c.Rate
		}
		now, stateEnd := int64(0), expDraw(rng, float64(c.CalmDwellNs))
		inBurst := false
		for now < c.DurationNs {
			rate := c.Rate
			if inBurst {
				rate = burst
			}
			now += expGap(rng, rate)
			// Crossing a state boundary flips the state and redraws the
			// dwell; the pending gap is kept (a small approximation that
			// preserves one-draw-per-arrival determinism).
			for now >= stateEnd {
				inBurst = !inBurst
				mean := float64(c.CalmDwellNs)
				if inBurst {
					mean = float64(c.BurstDwellNs)
				}
				stateEnd += expDraw(rng, mean)
			}
			if now < c.DurationNs {
				out = append(out, now)
			}
		}
	case Diurnal:
		// Thinning against the profile's peak keeps gaps exponential and
		// the accept draw per candidate, so the stream stays one
		// deterministic PCG walk.
		peak := 1.75 * c.Rate
		now := int64(0)
		for {
			now += expGap(rng, peak)
			if now >= c.DurationNs {
				break
			}
			x := float64(now) / float64(c.DurationNs) // 0..1 through the "day"
			tri := 1 - math.Abs(2*x-1)                // 0 -> 1 -> 0
			rate := c.Rate * (0.25 + 1.5*tri)
			if rng.Float64() < rate/peak {
				out = append(out, now)
			}
		}
	default: // Poisson
		now := int64(0)
		for {
			now += expGap(rng, c.Rate)
			if now >= c.DurationNs {
				break
			}
			out = append(out, now)
		}
	}
	return out
}

// expGap draws one exponential inter-arrival gap (ns) at rate req/s,
// clamped to at least 1 ns so time always advances.
func expGap(rng *rand.Rand, ratePerSec float64) int64 {
	g := int64(-math.Log1p(-rng.Float64()) * 1e9 / ratePerSec)
	if g < 1 {
		g = 1
	}
	return g
}

// expDraw draws an exponential duration (ns) with the given mean.
func expDraw(rng *rand.Rand, meanNs float64) int64 {
	d := int64(-math.Log1p(-rng.Float64()) * meanNs)
	if d < 1 {
		d = 1
	}
	return d
}
