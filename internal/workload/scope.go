package workload

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workload directives travel to a workload-driven experiment the same two
// ways a fault schedule does: an ambient string set once by a sequential
// driver (`butterflybench -workload`), and a goroutine-scoped override for
// the lab's concurrent workers, where two jobs with different workloads run
// at once and a process-wide ambient would race. The scoped form mirrors
// machine.ScopeHooks — experiments read their workload on the goroutine
// that called Experiment.Run, which is exactly the lab worker's goroutine.

var ambientDirectives atomic.Pointer[string]

// SetAmbient installs the process-wide workload directive string (empty
// string clears it). Sequential drivers only; the lab uses Scope.
func SetAmbient(directives string) {
	if directives == "" {
		ambientDirectives.Store(nil)
		return
	}
	ambientDirectives.Store(&directives)
}

var (
	// scopeCount gates the goroutine-id lookup, so experiments outside the
	// lab pay one atomic load to discover no scope exists.
	scopeCount atomic.Int32
	scopeMu    sync.RWMutex
	scopes     map[uint64]string
)

// Scope installs directives visible only on the calling goroutine,
// shadowing the ambient string. The returned release must be called when
// the job ends; registering twice on one goroutine without releasing
// panics.
func Scope(directives string) (release func()) {
	id := goid()
	scopeMu.Lock()
	if scopes == nil {
		scopes = make(map[uint64]string)
	}
	if _, dup := scopes[id]; dup {
		scopeMu.Unlock()
		panic("workload: Scope already registered on this goroutine")
	}
	scopes[id] = directives
	scopeMu.Unlock()
	scopeCount.Add(1)
	return func() {
		scopeMu.Lock()
		delete(scopes, id)
		scopeMu.Unlock()
		scopeCount.Add(-1)
	}
}

// Current returns the directive string in effect for the calling
// goroutine: its scoped string if one is registered (even when empty),
// else the ambient string, else "".
func Current() string {
	if scopeCount.Load() > 0 {
		id := goid()
		scopeMu.RLock()
		s, ok := scopes[id]
		scopeMu.RUnlock()
		if ok {
			return s
		}
	}
	if p := ambientDirectives.Load(); p != nil {
		return *p
	}
	return ""
}

// goid parses the runtime's goroutine id from a one-goroutine stack dump
// header ("goroutine 123 [running]:") — the same idiom machine.ScopeHooks
// uses (its goid is unexported, and a ~12-line parser is cheaper than
// widening that package's API).
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
