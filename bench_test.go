// Package-level benchmarks: one testing.B benchmark per experiment of the
// paper (see DESIGN.md's experiment index), plus microbenchmarks of the
// simulator substrate. Experiment benchmarks run the reduced-scale (quick)
// variant per iteration; the interesting output is the virtual-time tables
// they regenerate (run `go run ./cmd/butterflybench -all` for those at full
// scale). Wall-clock numbers here measure the simulator itself.
package main

import (
	"io"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
)

// benchExperiment runs one registered experiment per iteration at quick
// scale, discarding its table output.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per table/figure of the paper.

func BenchmarkFigure5GaussianElimination(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkNUMARatio(b *testing.B)                  { benchExperiment(b, "numa") }
func BenchmarkHoughCaching(b *testing.B)               { benchExperiment(b, "hough") }
func BenchmarkDataSpread(b *testing.B)                 { benchExperiment(b, "spread") }
func BenchmarkHotSpot(b *testing.B)                    { benchExperiment(b, "hotspot") }
func BenchmarkSwitchContention(b *testing.B)           { benchExperiment(b, "switch") }
func BenchmarkChrysalisPrimitives(b *testing.B)        { benchExperiment(b, "prims") }
func BenchmarkCrowdControl(b *testing.B)               { benchExperiment(b, "crowd") }
func BenchmarkAllocator(b *testing.B)                  { benchExperiment(b, "alloc") }
func BenchmarkReplayOverhead(b *testing.B)             { benchExperiment(b, "replay") }
func BenchmarkBridgeTools(b *testing.B)                { benchExperiment(b, "bridge") }
func BenchmarkConnectionist(b *testing.B)              { benchExperiment(b, "connect") }
func BenchmarkGraphSpeedups(b *testing.B)              { benchExperiment(b, "speedups") }
func BenchmarkFigure6Moviola(b *testing.B)             { benchExperiment(b, "fig6") }
func BenchmarkSARCache(b *testing.B)                   { benchExperiment(b, "sarcache") }
func BenchmarkModelCosts(b *testing.B)                 { benchExperiment(b, "models") }

// Simulator microbenchmarks: how fast the substrate itself runs.

func BenchmarkEngineContextSwitch(b *testing.B) {
	b.ReportAllocs()
	e := sim.New()
	e.Spawn("switcher", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(10)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineHandoff(b *testing.B) {
	// Two processes on alternating ticks: every event is a real
	// goroutine-to-goroutine handoff (the slow path ContextSwitch avoids).
	b.ReportAllocs()
	e := sim.New()
	for i := 0; i < 2; i++ {
		e.Spawn("pingpong", i, func(p *sim.Proc) {
			for j := 0; j < b.N; j++ {
				p.Advance(10)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngineCharge(b *testing.B) {
	// The two-tier fast path: Charge accumulates on the local clock and only
	// flushes when the lookahead slice fills.
	b.ReportAllocs()
	e := sim.New()
	e.Spawn("charger", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Charge(10)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRemoteReference(b *testing.B) {
	b.ReportAllocs()
	m := machine.New(machine.DefaultConfig(128))
	m.Spawn("reader", 0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			m.Read(p, 64, 1)
		}
	})
	b.ResetTimer()
	if err := m.E.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSweep(b *testing.B) {
	b.ReportAllocs()
	m := machine.New(machine.DefaultConfig(16))
	m.Spawn("sweeper", 0, func(p *sim.Proc) {
		refs := []machine.Ref{{Node: 1, Words: 1}, {Node: 2, Words: 2}}
		for i := 0; i < b.N; i++ {
			m.Sweep(p, 64, 1000, refs)
		}
	})
	b.ResetTimer()
	if err := m.E.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkButterflyRouting measures the switch-network fast path alone: one
// full routed-and-reserved transit per iteration on a 256-node butterfly
// (the incremental one-digit-swap router plus four calendar reservations).
func BenchmarkButterflyRouting(b *testing.B) {
	b.ReportAllocs()
	n := switchnet.New(switchnet.DefaultConfig(256))
	var t int64
	for i := 0; i < b.N; i++ {
		src := i % 256
		t = n.Transit(t, src, (src*37+11)%256, 4)
		if i%1024 == 0 {
			n.Prune(t)
		}
	}
}

// BenchmarkTopologyTransit measures the same routed transit on each of the
// other interconnect families.
func BenchmarkTopologyTransit(b *testing.B) {
	for _, topo := range switchnet.Topologies() {
		b.Run(string(topo), func(b *testing.B) {
			b.ReportAllocs()
			n := switchnet.Build(topo, switchnet.DefaultConfig(256))
			var t int64
			for i := 0; i < b.N; i++ {
				src := i % 256
				t = n.Transit(t, src, (src*37+11)%256, 4)
				if i%1024 == 0 {
					n.Prune(t)
				}
			}
		})
	}
}
