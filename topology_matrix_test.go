// Topology-matrix determinism: the interconnect axis must never perturb the
// default physics — an explicit -topology butterfly is byte-identical to no
// flag at all (so every seed golden stays valid) — and each non-default
// family must itself be run-to-run deterministic. This is the in-repo twin
// of the CI topology-matrix step.
package main

import (
	"bytes"
	"fmt"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/machine"
	"butterfly/internal/sim"
	"butterfly/internal/switchnet"
)

// topologyRun executes one experiment at quick scale with every machine
// rebuilt on the named interconnect ("" = no transform), returning the table
// and trajectory fingerprint.
func topologyRun(t *testing.T, e core.Experiment, topo string) (string, string) {
	t.Helper()
	var transform func(machine.Config) machine.Config
	if topo != "" {
		transform = core.Spec{Topology: topo}.ConfigTransform()
	}
	var engines []*sim.Engine
	release := machine.ScopeHooks(transform, func(m *machine.Machine) {
		engines = append(engines, m.E)
	})
	defer release()
	var buf bytes.Buffer
	if err := e.Run(&buf, true); err != nil {
		t.Fatalf("%s on %q: %v", e.ID, topo, err)
	}
	var vtime int64
	var events uint64
	for _, eng := range engines {
		vtime += eng.Now()
		events += eng.Stats().Events
	}
	return buf.String(), fmt.Sprintf("machines=%d vtime=%d events=%d", len(engines), vtime, events)
}

// matrixExperiments is the cross-section the matrix pins: a latency table, a
// contention-heavy hot spot, and an application kernel.
var matrixExperiments = []string{"numa", "hotspot", "fig5"}

// TestTopologyButterflyIsDefault: an explicit butterfly override must be
// byte-identical to the default machine — the invariant that keeps every
// pre-topology golden and cached fingerprint valid.
func TestTopologyButterflyIsDefault(t *testing.T) {
	for _, id := range matrixExperiments {
		e, ok := core.Lookup(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		defTable, defFP := topologyRun(t, e, "")
		bflTable, bflFP := topologyRun(t, e, string(switchnet.Butterfly))
		if defTable != bflTable {
			t.Errorf("%s: -topology butterfly table differs from default", id)
		}
		if defFP != bflFP {
			t.Errorf("%s: trajectory drift: default %s, butterfly %s", id, defFP, bflFP)
		}
	}
}

// TestTopologyMatrixDeterminism: every family replays every matrix
// experiment bit-identically.
func TestTopologyMatrixDeterminism(t *testing.T) {
	for _, topo := range switchnet.Topologies() {
		for _, id := range matrixExperiments {
			e, _ := core.Lookup(id)
			t1, f1 := topologyRun(t, e, string(topo))
			t2, f2 := topologyRun(t, e, string(topo))
			if t1 != t2 || f1 != f2 {
				t.Errorf("%s on %s: replay diverged (%s vs %s)", id, topo, f1, f2)
			}
		}
	}
}
