// Quantitative probe-backed assertions for the paper's two attribution
// claims: E5 (remote references steal memory cycles from the owning node)
// and E6 (switch contention is almost negligible — the memory port, not the
// network, is the bottleneck). The end-to-end experiment tables show *that*
// the degradation happens; these tests use the probe's occupancy metrics to
// show *where* the time goes.
package main

import (
	"testing"

	"butterfly/internal/chrysalis"
	"butterfly/internal/core"
	"butterfly/internal/machine"
	"butterfly/internal/probe"
	"butterfly/internal/sim"
)

// hotspotRun replicates the hotspot experiment's loaded configuration —
// spinners on distinct nodes hammering a spin lock homed on node 0 while the
// owner samples local read latency — with a probe attached, and returns the
// aggregated metrics plus the elapsed virtual time.
func hotspotRun(t *testing.T, nodes, spinners int) (*probe.Metrics, int64) {
	t.Helper()
	m := machine.New(core.ButterflyI(nodes))
	pr := probe.New(nil)
	m.AttachProbe(pr)
	os := chrysalis.New(m)
	lock := os.NewSpinLock(0)
	lock.PollNs = 1 * sim.Microsecond
	stop := false
	for s := 1; s <= spinners; s++ {
		m.Spawn("spinner", s, func(p *sim.Proc) {
			for !stop {
				if lock.TryLock(p) {
					lock.Unlock(p)
				}
				p.Advance(lock.PollNs)
			}
		})
	}
	m.Spawn("owner", 0, func(p *sim.Proc) {
		p.Advance(3 * sim.Millisecond)
		for i := 0; i < 50; i++ {
			m.Read(p, 0, 1)
			p.Advance(5 * sim.Microsecond)
		}
		stop = true
	})
	if err := m.E.Run(); err != nil {
		t.Fatalf("hotspot run: %v", err)
	}
	return pr.Metrics(), m.E.Now()
}

// TestE5CycleStealDominates pins the cycle-steal attribution: under the
// hotspot load the hot module's occupancy is overwhelmingly remote — the
// owning processor's own references get only scraps of its single port.
func TestE5CycleStealDominates(t *testing.T) {
	met, elapsed := hotspotRun(t, 32, 24)

	if len(met.Mem) == 0 {
		t.Fatal("no memory metrics recorded")
	}
	hot := met.Mem[0]
	if hot.BusyNs() == 0 {
		t.Fatal("hot module recorded no occupancy")
	}
	if steal := hot.StealFraction(); steal < 0.9 {
		t.Errorf("hot module steal fraction = %.3f, want >= 0.9 (remote occupancy should dominate)", steal)
	}
	if hot.RemoteWords <= hot.LocalWords*10 {
		t.Errorf("remote words %d not >> local words %d", hot.RemoteWords, hot.LocalWords)
	}
	// The module should be near saturation — that is what makes the owner's
	// local reads crawl in the experiment table.
	frac, node := met.MemUtilization(elapsed)
	if node != 0 {
		t.Errorf("busiest module = node %d, want the hot node 0", node)
	}
	if frac < 0.9 {
		t.Errorf("hot module utilization = %.3f of elapsed time, want >= 0.9", frac)
	}
	// And the contention must show up as per-word queueing on local refs.
	if hot.LocalWords > 0 && hot.LocalWaitNs/int64(hot.LocalWords) < 1000 {
		t.Errorf("local refs waited only %dns/word; expected heavy queueing behind remote traffic",
			hot.LocalWaitNs/int64(hot.LocalWords))
	}
}

// TestE6SwitchContentionNegligible pins the flip side: even under the load
// that saturates a memory module, the switch as a whole idles — aggregate
// port utilization sits at least an order of magnitude below memory
// utilization, and no single port comes close to the memory's saturation.
func TestE6SwitchContentionNegligible(t *testing.T) {
	met, elapsed := hotspotRun(t, 32, 24)

	memFrac, _ := met.MemUtilization(elapsed)
	portMean := met.MeanPortUtilization(elapsed)
	if portMean <= 0 {
		t.Fatal("no switch traffic recorded")
	}
	if portMean*10 > memFrac {
		t.Errorf("mean switch-port utilization %.4f not an order of magnitude below memory utilization %.4f",
			portMean, memFrac)
	}
	maxFrac, _, _ := met.PortUtilization(elapsed)
	if maxFrac*2 > memFrac {
		t.Errorf("busiest switch port %.4f busy vs memory %.4f; switch should never rival the memory port",
			maxFrac, memFrac)
	}
}
