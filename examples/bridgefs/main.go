// Bridge parallel file system walk-through: write an interleaved file over
// several simulated disks, run the parallel tools (copy, search, transform,
// sort), and compare against the conventional serial interface.
//
//	go run ./examples/bridgefs [-disks 8]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"

	"butterfly/internal/bridge"
	"butterfly/internal/chrysalis"
	"butterfly/internal/core"
	"butterfly/internal/sim"
)

func main() {
	disks := flag.Int("disks", 8, "number of simulated disks")
	flag.Parse()

	m, os := core.Boot(core.ButterflyI(*disks + 1))
	diskNodes := make([]int, *disks)
	for i := range diskNodes {
		diskNodes[i] = i + 1
	}
	b, err := bridge.New(os, diskNodes, bridge.DefaultDiskConfig())
	if err != nil {
		panic(err)
	}

	const blocks = 48
	text := bytes.Repeat([]byte("the butterfly effect "), blocks*bridge.BlockBytes/21+1)[:blocks*bridge.BlockBytes]
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint32, 2048)
	for i := range keys {
		keys[i] = rng.Uint32() % 100000
	}

	if _, err := os.MakeProcess(nil, "client", 0, 16, func(self *chrysalis.Process) {
		p := self.P
		f, _ := b.Create("corpus")
		b.Write(p, f, text)
		fmt.Printf("wrote %d blocks interleaved over %d disks\n\n", f.Blocks(), *disks)

		t0 := m.E.Now()
		if _, err := b.ReadAll(p, f); err != nil {
			panic(err)
		}
		serial := m.E.Now() - t0

		t0 = m.E.Now()
		if _, err := b.Copy(p, f, "copy"); err != nil {
			panic(err)
		}
		parCopy := m.E.Now() - t0

		t0 = m.E.Now()
		hits := b.Search(p, f, []byte("butterfly"))
		parSearch := m.E.Now() - t0

		t0 = m.E.Now()
		if _, err := b.Transform(p, f, "upper", bytes.ToUpper); err != nil {
			panic(err)
		}
		parXform := m.E.Now() - t0

		s, _ := b.Create("keys")
		b.Write(p, s, bridge.EncodeRecords(keys))
		t0 = m.E.Now()
		sorted, err := b.Sort(p, s, "sorted", len(keys))
		if err != nil {
			panic(err)
		}
		parSort := m.E.Now() - t0
		got := bridge.DecodeRecords(sorted.Bytes(), len(keys))
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				panic("sort output not sorted")
			}
		}

		fmt.Printf("serial read (conventional interface): %8.2f s\n", sim.Seconds(serial))
		fmt.Printf("parallel copy tool:                   %8.2f s\n", sim.Seconds(parCopy))
		fmt.Printf("parallel search tool (%5d hits):     %8.2f s\n", len(hits), sim.Seconds(parSearch))
		fmt.Printf("parallel transform tool:              %8.2f s\n", sim.Seconds(parXform))
		fmt.Printf("parallel sort tool (%d records):    %8.2f s\n", len(keys), sim.Seconds(parSort))
		fmt.Println("\nthe conventional interface moves one block at a time through the")
		fmt.Println("client; the tools run at the disks and scale with the disk count.")
		b.Shutdown(p)
	}); err != nil {
		panic(err)
	}
	if err := m.E.Run(); err != nil {
		panic(err)
	}
}
