// Gaussian elimination, shared memory versus message passing — a miniature
// of the paper's Figure 5. Run:
//
//	go run ./examples/gauss [-n 192] [-procs 4,16,32]
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"butterfly/internal/apps/gauss"
	"butterfly/internal/sim"
)

func main() {
	n := flag.Int("n", 192, "matrix size")
	procsFlag := flag.String("procs", "4,16,32", "comma-separated processor counts")
	flag.Parse()

	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			panic("bad -procs")
		}
		procs = append(procs, p)
	}

	fmt.Printf("Gaussian elimination of a %dx%d system (software floating point)\n\n", *n, *n)
	fmt.Printf("%6s %20s %20s\n", "procs", "shared memory (s)", "message passing (s)")
	for _, p := range procs {
		usRes, err := gauss.RunUS(gauss.USConfig{N: *n, Procs: p, Seed: 7, SpreadK: 128})
		if err != nil {
			panic(err)
		}
		mpRes, err := gauss.RunSMP(gauss.SMPConfig{N: *n, Procs: p, Seed: 7})
		if err != nil {
			panic(err)
		}
		if usRes.MaxResidue > 1e-9 || mpRes.MaxResidue > 1e-9 {
			panic("wrong answer")
		}
		fmt.Printf("%6d %20.2f %20.2f\n", p, sim.Seconds(usRes.ElapsedNs), sim.Seconds(mpRes.ElapsedNs))
	}
	fmt.Println("\nBoth versions solve the same system; residuals are checked against")
	fmt.Println("the original matrix. See `butterflybench -experiment fig5` for the")
	fmt.Println("full Figure 5 sweep.")
}
