// Instant Replay demo: record a racy parallel program, then replay it under
// completely different timing and watch the recorded order win. Finally,
// render the partial order the way Moviola does.
//
//	go run ./examples/replaydemo
package main

import (
	"fmt"

	"butterfly/internal/chrysalis"
	"butterfly/internal/core"
	"butterfly/internal/replay"
	"butterfly/internal/sim"
)

// race runs three processes that each append their name to a shared list
// under a monitored write, with the given per-process delays.
func race(mon *replay.Monitor, os *chrysalis.OS, delays []int64) []string {
	obj := mon.NewObject("list", 0)
	var order []string
	names := []string{"alpha", "beta", "gamma"}
	for i, name := range names {
		i, name := i, name
		if _, err := os.MakeProcess(nil, name, i, 8, func(self *chrysalis.Process) {
			for rep := 0; rep < 2; rep++ {
				self.P.Advance(delays[i])
				obj.Write(self.P, func() {
					order = append(order, name)
				})
			}
		}); err != nil {
			panic(err)
		}
	}
	if err := os.M.E.Run(); err != nil {
		panic(err)
	}
	return order
}

func main() {
	// Record with one timing...
	m1, os1 := core.Boot(core.ButterflyI(4))
	_ = m1
	mon1 := replay.NewMonitor(os1, replay.ModeRecord)
	recorded := race(mon1, os1, []int64{9 * sim.Millisecond, 1 * sim.Millisecond, 5 * sim.Millisecond})
	fmt.Println("recorded order: ", recorded)

	// ...replay with wildly different timing: the order must not change.
	_, os2 := core.Boot(core.ButterflyI(4))
	mon2 := replay.NewReplayMonitor(os2, mon1.Log())
	replayed := race(mon2, os2, []int64{1 * sim.Millisecond, 20 * sim.Millisecond, 40 * sim.Millisecond})
	fmt.Println("replayed order: ", replayed)

	same := len(recorded) == len(replayed)
	for i := range recorded {
		if !same || recorded[i] != replayed[i] {
			same = false
			break
		}
	}
	if !same {
		panic("replay diverged!")
	}
	fmt.Println("\nreplay reproduced the recorded order exactly, despite the different timing.")
	fmt.Println("\nMoviola view of the recorded execution:")
	fmt.Print(replay.BuildGraph(mon1.Log()).RenderASCII())
}
