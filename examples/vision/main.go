// Vision pipeline: a BIFF-style (Butterfly Image File Format, §3.1)
// composition of parallel filters — synthesize an edge image, then find its
// lines with the Hough transform in all three implementation styles.
//
//	go run ./examples/vision
package main

import (
	"fmt"

	"butterfly/internal/apps/hough"
	"butterfly/internal/sim"
)

func main() {
	const (
		size   = 128
		angles = 90
		procs  = 16
	)
	im := hough.SyntheticImage(size, size, 4, 0.03, 99)
	edges := 0
	for _, p := range im.Pixels {
		if p {
			edges++
		}
	}
	fmt.Printf("input: %dx%d edge image, %d edge pixels, %d angle bins, %d processors\n\n",
		size, size, edges, angles, procs)

	ref := hough.Reference(im, angles)
	var base int64
	for _, v := range []hough.Variant{hough.VariantShared, hough.VariantCached, hough.VariantLocalTables} {
		r, err := hough.Run(hough.Config{Image: im, Angles: angles, Procs: procs, Variant: v})
		if err != nil {
			panic(err)
		}
		if err := hough.Equal(ref, r.Votes); err != nil {
			panic(err)
		}
		if v == hough.VariantShared {
			base = r.ElapsedNs
		}
		fmt.Printf("%-28s %8.3f s   (%.0f%% faster than naive)\n",
			v.String(), sim.Seconds(r.ElapsedNs), hough.Speedup(base, r.ElapsedNs))
		if v == hough.VariantLocalTables {
			fmt.Println("\nstrongest lines (theta bin, rho bin):")
			for _, pk := range r.Peaks(4) {
				fmt.Printf("  theta=%3d rho=%4d votes=%d\n", pk[0], pk[1], r.Votes[pk[0]][pk[1]])
			}
		}
	}
}
