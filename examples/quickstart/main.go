// Quickstart: boot a simulated 16-node Butterfly, run a Uniform System
// dot-product across all processors, and print the speedup over one node.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"butterfly/internal/core"
	"butterfly/internal/us"
)

func main() {
	const n = 1 << 14 // vector length
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}

	dot := func(workers int) (float64, int64) {
		// Boot a Butterfly-I with one Chrysalis instance.
		m, os := core.Boot(core.ButterflyI(workers))

		sum := 0.0
		partial := make([]float64, workers)
		var elapsed int64
		cfg := us.DefaultConfig(workers)
		cfg.ParallelAlloc = true
		if _, err := us.Initialize(os, cfg, func(w *us.Worker) {
			start := m.E.Now()
			// One task per worker-sized band; each task multiplies its band
			// after block-copying it into local memory (the caching idiom).
			w.U.GenOnIndex(w, workers, func(tw *us.Worker, band int) {
				lo, hi := band*n/workers, (band+1)*n/workers
				m.BlockCopy(tw.P, band%workers, tw.P.Node, 2*(hi-lo))
				m.Flops(tw.P, 2*(hi-lo))
				s := 0.0
				for i := lo; i < hi; i++ {
					s += x[i] * y[i]
				}
				partial[band] = s
			})
			// Reduce the partial sums.
			m.Flops(w.P, workers)
			for _, s := range partial {
				sum += s
			}
			w.P.Sync() // flush the reduction charge before reading the clock
			elapsed = m.E.Now() - start
		}); err != nil {
			panic(err)
		}
		if err := m.E.Run(); err != nil {
			panic(err)
		}
		return sum, elapsed
	}

	s1, t1 := dot(1)
	s16, t16 := dot(16)
	if s1 != s16 {
		panic("parallel result differs from sequential")
	}
	fmt.Printf("dot product of 2x%d elements = %.4f\n", n, s16)
	fmt.Printf("  1 node:  %8.2f ms of Butterfly time\n", float64(t1)/1e6)
	fmt.Printf(" 16 nodes: %8.2f ms of Butterfly time (speedup %.1fx)\n",
		float64(t16)/1e6, float64(t1)/float64(t16))
}
