// Multi-model coexistence — the paper's central thesis in one program:
// "truly general-purpose parallel computing demands an operating system that
// supports these models as well, and that allows program fragments written
// under different models to coexist and interact."
//
// One machine hosts, at the same time:
//   - a Uniform System phase (shared-memory tasks) that squares a vector,
//   - an SMP family (message passing) that computes partial sums of the
//     squares in a ring,
//   - a Lynx server (RPC) that verifies the grand total on demand,
//
// with the hand-offs between models happening through the shared data the
// Butterfly makes globally addressable.
//
//	go run ./examples/coexist
package main

import (
	"fmt"

	"butterfly/internal/antfarm"
	"butterfly/internal/core"
	"butterfly/internal/lynx"
	"butterfly/internal/smp"
	"butterfly/internal/us"
)

func main() {
	const (
		procs = 8
		n     = 1 << 12
	)
	m, os := core.Boot(core.ButterflyI(procs))

	// Shared data: the vector, its squares, and the ring's partial sums.
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%97) / 7
	}
	squares := make([]float64, n)
	partial := make([]float64, procs)

	// Phase 3 (started first, runs last): a Lynx verification server.
	verifier, err := lynx.Spawn(os, "verifier", procs-1, lynx.DefaultConfig(), nil)
	if err != nil {
		panic(err)
	}
	verifier.Bind("check", func(ht *antfarm.Thread, args any, words int) (any, int, error) {
		claimed := args.(float64)
		want := 0.0
		for _, v := range xs {
			want += v * v
		}
		os.M.Flops(ht.P(), 2*n)
		// The ring sums in a different order than this linear pass, so
		// compare within floating-point slack.
		diff := claimed - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*want, 1, nil
	})

	// Phase 1: Uniform System tasks square the vector in shared memory.
	if _, err := us.Initialize(os, us.DefaultConfig(procs), func(w *us.Worker) {
		w.U.GenOnIndex(w, procs, func(tw *us.Worker, band int) {
			lo, hi := band*n/procs, (band+1)*n/procs
			m.BlockCopy(tw.P, band%procs, tw.P.Node, hi-lo)
			m.Flops(tw.P, hi-lo)
			for i := lo; i < hi; i++ {
				squares[i] = xs[i] * xs[i]
			}
			m.BlockCopy(tw.P, tw.P.Node, band%procs, hi-lo)
		})
		fmt.Println("phase 1 (Uniform System): vector squared in shared memory")

		// Phase 2: an SMP ring accumulates the partial sums by message
		// passing over the same shared data.
		nodes := make([]int, procs)
		for i := range nodes {
			nodes[i] = i
		}
		var ringTotal float64
		fam, err := smp.NewFamily(os, nil, "ring", nodes, smp.Ring{}, smp.DefaultConfig(), func(mem *smp.Member) {
			lo, hi := mem.ID*n/procs, (mem.ID+1)*n/procs
			s := 0.0
			for i := lo; i < hi; i++ {
				s += squares[i]
			}
			m.Flops(mem.P, hi-lo)
			partial[mem.ID] = s
			if mem.ID == 0 {
				if err := mem.Send(1, 0, 2, s); err != nil {
					panic(err)
				}
				msg := mem.Recv() // the token returns around the ring
				ringTotal = msg.Payload.(float64)
			} else {
				msg := mem.Recv()
				acc := msg.Payload.(float64) + s
				if err := mem.Send((mem.ID+1)%procs, 0, 2, acc); err != nil {
					panic(err)
				}
			}
		})
		if err != nil {
			panic(err)
		}
		_ = fam

		// Phase 4: a Lynx client asks the RPC server to verify the total.
		if _, err := lynx.Spawn(os, "client", 0, lynx.DefaultConfig(), func(self *lynx.Proc, th *antfarm.Thread) {
			th.P().Advance(2_000_000_000) // wait out the ring (virtual time)
			fmt.Printf("phase 2 (SMP ring): total of squares = %.4f\n", ringTotal)
			l := lynx.NewLink(self, verifier)
			ok, err := self.Call(th, l, "check", ringTotal, 2)
			if err != nil {
				panic(err)
			}
			fmt.Printf("phase 3 (Lynx RPC): verifier says correct = %v\n", ok.(bool))
			verifier.Shutdown(th)
		}); err != nil {
			panic(err)
		}
	}); err != nil {
		panic(err)
	}

	if err := m.E.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("\nthree programming models shared one machine and one data set;\n")
	fmt.Printf("total simulated time: %.3f s\n", float64(m.E.Now())/1e9)
}
