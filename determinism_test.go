// Golden determinism regression: every registered experiment, run at quick
// scale, must produce exactly the same virtual-time trajectory on every
// machine it builds — same number of machines, same final virtual clocks,
// same number of engine events. The two-tier charging model (lazy local
// clocks flushed at sync points) is only admissible because it cannot change
// these numbers; any drift here means the simulation's physics changed and
// every table in the paper reproduction is suspect.
//
// Regenerate after an intentional model change with:
//
//	go test -run TestExperimentDeterminism -update .
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"butterfly/internal/core"
	"butterfly/internal/fault"
	"butterfly/internal/machine"
	"butterfly/internal/probe"
	"butterfly/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// partitionsFlag reruns the whole suite with every partitionable
// experiment's machines raised to this partition count (the CI matrix runs
// it at 1, 2, and 4 under -race). The golden file is partition-count
// independent — that is the partitioned engine's core invariant — so no
// separate golden exists per count.
var partitionsFlag = flag.Int("partitions", 0, "override partition count for partitionable experiments")

// experimentFingerprint runs one experiment at quick scale and reduces every
// engine it builds to (machines, Σ final virtual time, Σ events executed).
// When probed is non-nil, every machine gets an observability probe feeding
// that sink attached — used to prove observation never perturbs the physics.
func experimentFingerprint(t *testing.T, e core.Experiment, probed *probe.Counter) string {
	t.Helper()
	var transform func(machine.Config) machine.Config
	if *partitionsFlag > 0 {
		transform = core.Spec{Partitions: *partitionsFlag}.ConfigTransform()
	}
	var engines []*sim.Engine
	release := machine.ScopeHooks(transform, func(m *machine.Machine) {
		engines = append(engines, m.E)
		if probed != nil {
			m.AttachProbe(probe.New(probed))
		}
	})
	defer release()
	if err := e.Run(io.Discard, true); err != nil {
		t.Fatalf("experiment %s: %v", e.ID, err)
	}
	var vtime int64
	var events uint64
	for _, eng := range engines {
		vtime += eng.Now()
		events += eng.Stats().Events
	}
	return fmt.Sprintf("%s machines=%d vtime=%d events=%d", e.ID, len(engines), vtime, events)
}

func TestExperimentDeterminism(t *testing.T) {
	var lines []string
	for _, e := range core.Experiments() {
		lines = append(lines, experimentFingerprint(t, e, nil))
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "determinism.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test -run TestExperimentDeterminism -update .`): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	// Line-by-line diagnosis beats dumping two blobs.
	gotLines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	wantLines := strings.Split(strings.TrimSuffix(want, "\n"), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("determinism drift:\n  got  %s\n  want %s", g, w)
		}
	}
}

// faultedFingerprint runs one experiment at quick scale with a fault
// injector (built fresh from cfg) attached to every machine it boots.
func faultedFingerprint(t *testing.T, e core.Experiment, cfg fault.Config) string {
	t.Helper()
	var engines []*sim.Engine
	machine.SetNewHook(func(m *machine.Machine) {
		engines = append(engines, m.E)
		m.AttachFaults(fault.NewInjector(cfg))
	})
	defer machine.SetNewHook(nil)
	if err := e.Run(io.Discard, true); err != nil {
		t.Fatalf("experiment %s (faulted): %v", e.ID, err)
	}
	var vtime int64
	var events uint64
	for _, eng := range engines {
		vtime += eng.Now()
		events += eng.Stats().Events
	}
	return fmt.Sprintf("%s machines=%d vtime=%d events=%d", e.ID, len(engines), vtime, events)
}

// TestFaultSeedDeterminism runs fault-tolerant experiments twice with an
// identical fault schedule (same seed, same drop probability, same kill
// times) and demands bit-identical trajectories. The injector draws every
// probabilistic outcome from one seeded PCG stream in simulation dispatch
// order, so reproducing a failure scenario needs nothing but its config —
// the property the whole schedule-driven design exists to provide.
func TestFaultSeedDeterminism(t *testing.T) {
	cfg := fault.Config{
		Seed:     99,
		DropProb: 0.002,
		Failures: []fault.NodeFailure{{Node: 7, At: 2 * sim.Millisecond}},
	}
	for _, id := range []string{"hotspot", "switch", "degrade"} {
		e, ok := core.Lookup(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		var a, b string
		if e.ManagesFaults {
			// The experiment builds its own injectors (seeded from its
			// fixed default config): just run it twice.
			a = experimentFingerprint(t, e, nil)
			b = experimentFingerprint(t, e, nil)
		} else {
			a = faultedFingerprint(t, e, cfg)
			b = faultedFingerprint(t, e, cfg)
		}
		if a != b {
			t.Errorf("fault injection is not deterministic for %s:\n  run1 %s\n  run2 %s", id, a, b)
		}
	}
}

// TestProbesDoNotPerturb runs every experiment twice — probes off, then
// probes on with a counting sink — and demands identical fingerprints. This
// pins the probe subsystem's core contract: attaching observation changes
// nothing about the simulation (no extra events, no clock drift, no dispatch
// reordering), so any measurement the probe reports describes the same
// execution the tables were generated from.
func TestProbesDoNotPerturb(t *testing.T) {
	for _, e := range core.Experiments() {
		bare := experimentFingerprint(t, e, nil)
		var c probe.Counter
		probed := experimentFingerprint(t, e, &c)
		if bare != probed {
			t.Errorf("probe perturbed %s:\n  off %s\n  on  %s", e.ID, bare, probed)
		}
		if c.Total() == 0 {
			t.Errorf("probe recorded no events for %s; instrumentation is not wired through", e.ID)
		}
	}
}
